#include "infer/compiled_tree.h"

#include <cassert>
#include <cmath>
#include <limits>
#include <vector>

#include "infer/infer_kernels.h"
#include "infer/model_io.h"

namespace cmp {

namespace {

/// True if `t` survives a round trip through float, so the inline
/// float-threshold compare `x <= (double)(float)t` partitions doubles
/// exactly where `x <= t` does.
bool FloatRoundTrips(double t) {
  if (!std::isfinite(t) || std::abs(t) > std::numeric_limits<float>::max()) {
    return false;
  }
  return static_cast<double>(static_cast<float>(t)) == t;
}

bool BindFail(std::string* error, const std::string& what) {
  if (error != nullptr) *error = what;
  return false;
}

/// Locates the `kind` section of tree `tree_index`, checking its byte
/// size is exactly count * elem_bytes. A missing section is returned as
/// an empty section (count 0) when `required` is false.
bool FindTyped(const ModelBlob& blob, uint32_t tree_index, SectionKind kind,
               uint64_t elem_bytes, bool required, const BlobSection** out,
               std::string* error) {
  const BlobSection* s = blob.Find(tree_index, kind);
  if (s == nullptr) {
    *out = nullptr;
    if (required) return BindFail(error, "missing required tree section");
    return true;
  }
  if (s->bytes != s->count * elem_bytes) {
    return BindFail(error, "section size does not match element count");
  }
  *out = s;
  return true;
}

}  // namespace

CompiledTreeArrays CompileTreeToArrays(const DecisionTree& tree) {
  CompiledTreeArrays out;
  out.num_classes = std::max<int32_t>(tree.schema().num_classes(), 1);
  if (tree.empty()) return out;

  // Emit nodes in depth-first preorder (left child adjacent to parent);
  // only reachable nodes are visited, so MakeLeaf garbage is dropped.
  struct Frame {
    NodeId src;
    int32_t parent;  // compiled id whose child slot to patch, -1 for root
    bool is_left;
  };
  std::vector<Frame> stack = {{0, -1, false}};
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    const int32_t id = static_cast<int32_t>(out.attr.size());
    if (f.parent >= 0) {
      out.children[2 * f.parent + (f.is_left ? 0 : 1)] = id;
    }
    out.attr.push_back(CompiledTree::kLeaf);
    out.threshold.push_back(0.0f);
    out.children.push_back(kInvalidNode);
    out.children.push_back(kInvalidNode);

    const TreeNode& n = tree.node(f.src);
    if (n.is_leaf) {
      const int32_t leaf_index = static_cast<int32_t>(out.leaf_class.size());
      ClassId cls = n.leaf_class;
      if (cls < 0 || cls >= out.num_classes) cls = 0;
      out.leaf_class.push_back(cls);
      out.children[2 * id] = cls;
      out.children[2 * id + 1] = leaf_index;

      // Normalize the training class counts into probabilities; a leaf
      // with no recorded counts keeps full confidence in its class.
      double total = 0.0;
      for (size_t c = 0;
           c < n.class_counts.size() &&
           c < static_cast<size_t>(out.num_classes);
           ++c) {
        total += static_cast<double>(n.class_counts[c]);
      }
      for (int32_t c = 0; c < out.num_classes; ++c) {
        float p;
        if (total > 0.0) {
          const int64_t cnt =
              c < static_cast<int32_t>(n.class_counts.size())
                  ? n.class_counts[c]
                  : 0;
          p = static_cast<float>(static_cast<double>(cnt) / total);
        } else {
          p = c == cls ? 1.0f : 0.0f;
        }
        out.leaf_probs.push_back(p);
      }
      continue;
    }

    const Split& s = n.split;
    switch (s.kind) {
      case Split::Kind::kNumeric:
        if (s.attr <= std::numeric_limits<int16_t>::max() &&
            FloatRoundTrips(s.threshold)) {
          out.attr[id] = static_cast<int16_t>(s.attr);
          out.threshold[id] = static_cast<float>(s.threshold);
        } else {
          const int32_t idx = static_cast<int32_t>(out.wide_splits.size());
          out.wide_splits.push_back(
              CompiledTree::WideSplit{s.attr, 0, s.threshold});
          out.attr[id] = CompiledTree::kWide;
          out.threshold[id] = std::bit_cast<float>(idx);
        }
        break;
      case Split::Kind::kCategorical: {
        const int32_t idx = static_cast<int32_t>(out.cat_splits.size());
        CompiledTree::CatSplit cs;
        cs.attr = s.attr;
        cs.offset = static_cast<int32_t>(out.cat_bits.size());
        cs.card = static_cast<int32_t>(s.left_subset.size());
        out.cat_splits.push_back(cs);
        out.cat_bits.insert(out.cat_bits.end(), s.left_subset.begin(),
                            s.left_subset.end());
        out.attr[id] = CompiledTree::kCat;
        out.threshold[id] = std::bit_cast<float>(idx);
        break;
      }
      case Split::Kind::kLinear: {
        const int32_t idx = static_cast<int32_t>(out.lin_splits.size());
        out.lin_splits.push_back(
            CompiledTree::LinSplit{s.attr, s.attr2, s.a, s.b, s.c});
        out.attr[id] = CompiledTree::kLin;
        out.threshold[id] = std::bit_cast<float>(idx);
        break;
      }
    }
    assert(n.left != kInvalidNode && n.right != kInvalidNode);
    // Right first so the left child is emitted next (preorder adjacency).
    stack.push_back(Frame{n.right, id, false});
    stack.push_back(Frame{n.left, id, true});
  }
  return out;
}

CompiledTree CompiledTree::Compile(const DecisionTree& tree) {
  if (tree.empty()) {
    CompiledTree out;
    out.schema_ = std::make_shared<const Schema>(tree.schema());
    out.num_classes_ = std::max<int32_t>(tree.schema().num_classes(), 1);
    return out;
  }
  // Pack a single-tree blob and bind a view onto it, so the in-memory
  // model and `cmptool compile`'s file are the same bytes.
  std::string error;
  CompiledModel model = CompileModel({&tree}, &error);
  assert(!model.empty() && error.empty());
  return model.trees.empty() ? CompiledTree() : model.trees[0];
}

bool CompiledTree::FromBlob(std::shared_ptr<const ModelBlob> blob,
                            std::shared_ptr<const Schema> schema,
                            uint32_t tree_index, CompiledTree* out,
                            std::string* error) {
  *out = CompiledTree();
  if (blob == nullptr || schema == nullptr) {
    return BindFail(error, "null blob or schema");
  }
  const ModelBlob& b = *blob;
  const int32_t num_classes = static_cast<int32_t>(b.num_classes());
  const int32_t num_attrs = schema->num_attrs();
  if (num_classes < 1) return BindFail(error, "blob class count < 1");

  const BlobSection* attr = nullptr;
  const BlobSection* threshold = nullptr;
  const BlobSection* children = nullptr;
  const BlobSection* cats = nullptr;
  const BlobSection* cat_bits = nullptr;
  const BlobSection* lins = nullptr;
  const BlobSection* wides = nullptr;
  const BlobSection* leaf_class = nullptr;
  const BlobSection* leaf_probs = nullptr;
  if (!FindTyped(b, tree_index, SectionKind::kNodeAttr, sizeof(int16_t), true,
                 &attr, error) ||
      !FindTyped(b, tree_index, SectionKind::kThreshold, sizeof(float), true,
                 &threshold, error) ||
      !FindTyped(b, tree_index, SectionKind::kChildren, sizeof(int32_t), true,
                 &children, error) ||
      !FindTyped(b, tree_index, SectionKind::kCatSplits, sizeof(CatSplit),
                 false, &cats, error) ||
      !FindTyped(b, tree_index, SectionKind::kCatBits, 1, false, &cat_bits,
                 error) ||
      !FindTyped(b, tree_index, SectionKind::kLinSplits, sizeof(LinSplit),
                 false, &lins, error) ||
      !FindTyped(b, tree_index, SectionKind::kWideSplits, sizeof(WideSplit),
                 false, &wides, error) ||
      !FindTyped(b, tree_index, SectionKind::kLeafClass, sizeof(ClassId), true,
                 &leaf_class, error) ||
      !FindTyped(b, tree_index, SectionKind::kLeafProbs, sizeof(float), true,
                 &leaf_probs, error)) {
    return false;
  }

  const uint64_t n = attr->count;
  if (n == 0 || n > static_cast<uint64_t>(std::numeric_limits<int32_t>::max())) {
    return BindFail(error, "node count out of range");
  }
  if (threshold->count != n || children->count != 2 * n) {
    return BindFail(error, "node section counts disagree");
  }
  const uint64_t num_leaves = leaf_class->count;
  if (num_leaves == 0 || num_leaves > n) {
    return BindFail(error, "leaf count out of range");
  }
  if (leaf_probs->count !=
      num_leaves * static_cast<uint64_t>(num_classes)) {
    return BindFail(error, "leaf probability table has wrong shape");
  }

  CompiledTree t;
  t.schema_ = std::move(schema);
  t.storage_ = blob;
  t.num_classes_ = num_classes;
  t.num_nodes_ = static_cast<int32_t>(n);
  t.num_leaves_ = static_cast<int32_t>(num_leaves);
  t.attr_ = b.SectionData<int16_t>(*attr);
  t.threshold_ = b.SectionData<float>(*threshold);
  t.children_ = b.SectionData<int32_t>(*children);
  t.cat_splits_ = cats != nullptr ? b.SectionData<CatSplit>(*cats) : nullptr;
  t.num_cat_ = cats != nullptr ? static_cast<int32_t>(cats->count) : 0;
  t.cat_bits_ = cat_bits != nullptr ? b.SectionData<uint8_t>(*cat_bits)
                                    : nullptr;
  t.num_cat_bits_ = cat_bits != nullptr
                        ? static_cast<int64_t>(cat_bits->count)
                        : 0;
  t.lin_splits_ = lins != nullptr ? b.SectionData<LinSplit>(*lins) : nullptr;
  t.num_lin_ = lins != nullptr ? static_cast<int32_t>(lins->count) : 0;
  t.wide_splits_ =
      wides != nullptr ? b.SectionData<WideSplit>(*wides) : nullptr;
  t.num_wide_ = wides != nullptr ? static_cast<int32_t>(wides->count) : 0;
  t.leaf_class_ = b.SectionData<ClassId>(*leaf_class);
  t.leaf_probs_ = b.SectionData<float>(*leaf_probs);

  // Node-level validation: after this loop, descent on any row value is
  // guaranteed in-bounds and terminating (internal children point
  // strictly forward, so `id` increases every step).
  const int32_t nn = t.num_nodes_;
  for (int32_t i = 0; i < nn; ++i) {
    const int16_t a = t.attr_[i];
    const int32_t left = t.children_[2 * i];
    const int32_t right = t.children_[2 * i + 1];
    if (a == kLeaf) {
      if (left < 0 || left >= num_classes) {
        return BindFail(error, "leaf class out of range");
      }
      if (right < 0 || right >= t.num_leaves_) {
        return BindFail(error, "leaf index out of range");
      }
      if (t.leaf_class_[right] != left) {
        return BindFail(error, "leaf class table disagrees with node");
      }
      continue;
    }
    if (left <= i || left >= nn || right <= i || right >= nn) {
      return BindFail(error, "child pointer not strictly forward");
    }
    if (a >= 0) {
      if (a >= num_attrs || !t.schema_->is_numeric(a)) {
        return BindFail(error, "numeric split on invalid attribute");
      }
    } else if (a == kWide) {
      const int32_t idx = SideIndex(t.threshold_[i]);
      if (idx < 0 || idx >= t.num_wide_) {
        return BindFail(error, "wide-split index out of range");
      }
      const WideSplit& w = t.wide_splits_[idx];
      if (w.attr < 0 || w.attr >= num_attrs ||
          !t.schema_->is_numeric(w.attr)) {
        return BindFail(error, "wide split on invalid attribute");
      }
    } else if (a == kLin) {
      const int32_t idx = SideIndex(t.threshold_[i]);
      if (idx < 0 || idx >= t.num_lin_) {
        return BindFail(error, "linear-split index out of range");
      }
      const LinSplit& l = t.lin_splits_[idx];
      if (l.x < 0 || l.x >= num_attrs || !t.schema_->is_numeric(l.x) ||
          l.y < 0 || l.y >= num_attrs || !t.schema_->is_numeric(l.y)) {
        return BindFail(error, "linear split on invalid attribute");
      }
    } else if (a == kCat) {
      const int32_t idx = SideIndex(t.threshold_[i]);
      if (idx < 0 || idx >= t.num_cat_) {
        return BindFail(error, "categorical-split index out of range");
      }
      const CatSplit& c = t.cat_splits_[idx];
      if (c.attr < 0 || c.attr >= num_attrs ||
          t.schema_->is_numeric(c.attr)) {
        return BindFail(error, "categorical split on invalid attribute");
      }
      if (c.card < 0 || c.offset < 0 ||
          static_cast<int64_t>(c.offset) + c.card > t.num_cat_bits_) {
        return BindFail(error, "categorical bit range out of bounds");
      }
    } else {
      return BindFail(error, "unknown node kind");
    }
  }

  // Fuse each node's hot fields into one 16-byte record plus a parallel
  // attribute word for the vector kernels: one cache line per visited
  // node instead of three, with wide splits resolved to their exact
  // double threshold and inline float thresholds pre-widened (the
  // identical static_cast the scalar walker performs per visit), so
  // descent over fused records is byte-identical to descent over the
  // arrays.
  {
    auto fused = std::make_shared<std::vector<FusedNode>>(
        static_cast<size_t>(nn));
    auto fattr = std::make_shared<std::vector<int32_t>>(
        static_cast<size_t>(nn));
    for (int32_t i = 0; i < nn; ++i) {
      FusedNode& f = (*fused)[i];
      const int16_t a = t.attr_[i];
      f.left = t.children_[2 * i];
      f.right = t.children_[2 * i + 1];
      if (a >= 0) {
        (*fattr)[i] = a;
        f.threshold = static_cast<double>(t.threshold_[i]);
        t.fused_attr_slots_ = std::max(t.fused_attr_slots_, a + 1);
      } else if (a == kWide) {
        const WideSplit& w = t.wide_splits_[SideIndex(t.threshold_[i])];
        (*fattr)[i] = w.attr;
        f.threshold = w.threshold;
        t.fused_attr_slots_ = std::max(t.fused_attr_slots_, w.attr + 1);
      } else if (a == kLeaf) {
        (*fattr)[i] = a;
      } else {  // kCat / kLin: side-table index rides the threshold slot
        (*fattr)[i] = a;
        f.threshold = std::bit_cast<double>(
            static_cast<int64_t>(SideIndex(t.threshold_[i])));
      }
    }
    t.fused_store_ = std::move(fused);
    t.fused_attr_store_ = std::move(fattr);
  }

  *out = std::move(t);
  return true;
}

void CompiledTree::LeafIndicesOf(const Dataset& ds, RecordId begin,
                                 RecordId end, int32_t* out) const {
  if (end <= begin) return;
  // The dataset is already column-major; the view is just one pointer
  // per attribute (only the matching-kind slot is ever read).
  const int32_t na = schema_->num_attrs();
  std::vector<const double*> num(na, nullptr);
  std::vector<const int32_t*> cat(na, nullptr);
  bool any_cat = false;
  for (int32_t a = 0; a < na; ++a) {
    if (schema_->is_numeric(a)) {
      num[a] = ds.numeric_column(a).data();
    } else {
      cat[a] = ds.categorical_column(a).data();
      any_cat = true;
    }
  }
  const RowColumnsView view{num.data(), any_cat ? cat.data() : nullptr};
  LeafIndicesOfColumns(view, begin, end, out);
}

void CompiledTree::LeafIndicesOfColumns(const RowColumnsView& rows,
                                        int64_t begin, int64_t end,
                                        int32_t* out,
                                        const InferKernelOps* ops) const {
  if (end <= begin) return;
  const InferKernelOps& k = ops != nullptr ? *ops : ActiveInferKernelOps();
  k.descend_block(nodes_view(), rows, begin, end, out);
}

}  // namespace cmp
