#include "infer/compiled_tree.h"

#include <cassert>
#include <cmath>
#include <limits>

namespace cmp {

namespace {

/// True if `t` survives a round trip through float, so the inline
/// float-threshold compare `x <= (double)(float)t` partitions doubles
/// exactly where `x <= t` does.
bool FloatRoundTrips(double t) {
  if (!std::isfinite(t) || std::abs(t) > std::numeric_limits<float>::max()) {
    return false;
  }
  return static_cast<double>(static_cast<float>(t)) == t;
}

}  // namespace

CompiledTree CompiledTree::Compile(const DecisionTree& tree) {
  CompiledTree out;
  out.schema_ = tree.schema();
  out.num_classes_ = std::max<int32_t>(tree.schema().num_classes(), 1);
  if (tree.empty()) return out;

  // Emit nodes in depth-first preorder (left child adjacent to parent);
  // only reachable nodes are visited, so MakeLeaf garbage is dropped.
  struct Frame {
    NodeId src;
    int32_t parent;  // compiled id whose child slot to patch, -1 for root
    bool is_left;
  };
  std::vector<Frame> stack = {{0, -1, false}};
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    const int32_t id = static_cast<int32_t>(out.attr_.size());
    if (f.parent >= 0) {
      out.children_[2 * f.parent + (f.is_left ? 0 : 1)] = id;
    }
    out.attr_.push_back(kLeaf);
    out.threshold_.push_back(0.0f);
    out.children_.push_back(kInvalidNode);
    out.children_.push_back(kInvalidNode);

    const TreeNode& n = tree.node(f.src);
    if (n.is_leaf) {
      const int32_t leaf_index = static_cast<int32_t>(out.leaf_class_.size());
      ClassId cls = n.leaf_class;
      if (cls < 0 || cls >= out.num_classes_) cls = 0;
      out.leaf_class_.push_back(cls);
      out.children_[2 * id] = cls;
      out.children_[2 * id + 1] = leaf_index;

      // Normalize the training class counts into probabilities; a leaf
      // with no recorded counts keeps full confidence in its class.
      double total = 0.0;
      for (size_t c = 0;
           c < n.class_counts.size() &&
           c < static_cast<size_t>(out.num_classes_);
           ++c) {
        total += static_cast<double>(n.class_counts[c]);
      }
      for (int32_t c = 0; c < out.num_classes_; ++c) {
        float p;
        if (total > 0.0) {
          const int64_t cnt =
              c < static_cast<int32_t>(n.class_counts.size())
                  ? n.class_counts[c]
                  : 0;
          p = static_cast<float>(static_cast<double>(cnt) / total);
        } else {
          p = c == cls ? 1.0f : 0.0f;
        }
        out.leaf_probs_.push_back(p);
      }
      continue;
    }

    const Split& s = n.split;
    switch (s.kind) {
      case Split::Kind::kNumeric:
        if (s.attr <= std::numeric_limits<int16_t>::max() &&
            FloatRoundTrips(s.threshold)) {
          out.attr_[id] = static_cast<int16_t>(s.attr);
          out.threshold_[id] = static_cast<float>(s.threshold);
        } else {
          const int32_t idx = static_cast<int32_t>(out.wide_splits_.size());
          out.wide_splits_.push_back(WideSplit{s.attr, s.threshold});
          out.attr_[id] = kWide;
          out.threshold_[id] = std::bit_cast<float>(idx);
        }
        break;
      case Split::Kind::kCategorical: {
        const int32_t idx = static_cast<int32_t>(out.cat_splits_.size());
        CatSplit cs;
        cs.attr = s.attr;
        cs.offset = static_cast<int32_t>(out.cat_bits_.size());
        cs.card = static_cast<int32_t>(s.left_subset.size());
        out.cat_splits_.push_back(cs);
        out.cat_bits_.insert(out.cat_bits_.end(), s.left_subset.begin(),
                             s.left_subset.end());
        out.attr_[id] = kCat;
        out.threshold_[id] = std::bit_cast<float>(idx);
        break;
      }
      case Split::Kind::kLinear: {
        const int32_t idx = static_cast<int32_t>(out.lin_splits_.size());
        out.lin_splits_.push_back(LinSplit{s.attr, s.attr2, s.a, s.b, s.c});
        out.attr_[id] = kLin;
        out.threshold_[id] = std::bit_cast<float>(idx);
        break;
      }
    }
    assert(n.left != kInvalidNode && n.right != kInvalidNode);
    // Right first so the left child is emitted next (preorder adjacency).
    stack.push_back(Frame{n.right, id, false});
    stack.push_back(Frame{n.left, id, true});
  }
  return out;
}

}  // namespace cmp
