#ifndef CMP_INFER_ENSEMBLE_H_
#define CMP_INFER_ENSEMBLE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/dataset.h"
#include "common/thread_pool.h"
#include "infer/batch_predictor.h"
#include "infer/compiled_tree.h"
#include "infer/scratch.h"
#include "tree/tree.h"

namespace cmp {

/// How an ensemble combines its member trees' opinions on a row.
enum class VoteKind {
  /// One hard vote per tree for its predicted class; ties go to the
  /// lower class id. Reported probabilities are vote fractions.
  kMajority,
  /// Average of the trees' leaf probability vectors; the predicted class
  /// is its argmax (ties to the lower class id).
  kAverageProb,
};

/// Batch scorer over a fixed set of CompiledTrees sharing one schema —
/// e.g. the k per-fold trees a cross-validation run leaves behind, bagged
/// trees, or the same tree trained at different interval budgets.
///
/// Scoring follows BatchPredictor's contract (labels, optional probs,
/// top-k, abstain-below-confidence, row blocks across a ThreadPool);
/// "probability of the predicted class" for abstention is the combined
/// vote fraction / averaged probability, so an ensemble abstains exactly
/// when its members genuinely disagree.
class EnsemblePredictor {
 public:
  /// Takes ownership of pre-compiled trees (at least one; all must agree
  /// on the number of classes).
  explicit EnsemblePredictor(std::vector<CompiledTree> trees,
                             VoteKind vote = VoteKind::kMajority);

  /// Compiles and wraps interpreted trees in one go.
  static EnsemblePredictor Compile(const std::vector<DecisionTree>& trees,
                                   VoteKind vote = VoteKind::kMajority);

  int num_trees() const { return static_cast<int>(trees_.size()); }
  VoteKind vote() const { return vote_; }
  int32_t num_classes() const { return trees_.front().num_classes(); }
  const Schema& schema() const { return trees_.front().schema(); }

  /// Scores every record of `ds`. PredictOptions semantics match
  /// BatchPredictor; pass a pool to share threads with other work, else
  /// an internal pool of opts.num_threads workers is created on first
  /// use and reused by later calls (recreated only when a call asks for
  /// a different thread count). Safe to call concurrently.
  BatchResult Predict(const Dataset& ds, const PredictOptions& opts = {},
                      ThreadPool* pool = nullptr) const;

  /// Scores `n` raw dense rows (layout as in BatchPredictor::PredictRaw:
  /// row-major, one slot per schema attribute, `categorical` may be null
  /// for all-numeric schemas). Same combining rules as Predict — this is
  /// the entry point the serving path feeds micro-batches through.
  BatchResult PredictRaw(const double* numeric, const int32_t* categorical,
                         int64_t n, const PredictOptions& opts = {},
                         ThreadPool* pool = nullptr) const;

  /// Scores `n` rows already in column-major form (one pointer per
  /// schema attribute, see RowColumnsView); the serving batcher's
  /// zero-copy entry point.
  BatchResult PredictColumns(const double* const* numeric_cols,
                             const int32_t* const* categorical_cols,
                             int64_t n, const PredictOptions& opts = {},
                             ThreadPool* pool = nullptr) const;

 private:
  template <typename ColumnsFor>
  BatchResult Run(int64_t n, const PredictOptions& opts, ThreadPool* pool,
                  const ColumnsFor& columns_for) const;
  std::vector<CompiledTree> trees_;
  VoteKind vote_;
  mutable ScratchPool scratch_;  // per-block leaf/vote buffers, reused
  // Cached internal pool; shared_ptr so a concurrent Predict that asked
  // for a different thread count can swap in a new pool while in-flight
  // calls finish on the old one.
  mutable std::mutex pool_mu_;
  mutable std::shared_ptr<ThreadPool> owned_pool_;
  mutable int owned_pool_threads_ = -1;  // guarded by pool_mu_
};

}  // namespace cmp

#endif  // CMP_INFER_ENSEMBLE_H_
