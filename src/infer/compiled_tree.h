#ifndef CMP_INFER_COMPILED_TREE_H_
#define CMP_INFER_COMPILED_TREE_H_

#include <algorithm>
#include <bit>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "common/dataset.h"
#include "common/schema.h"
#include "common/types.h"
#include "io/model_blob.h"
#include "tree/tree.h"

namespace cmp {

struct TreeNodesView;
struct InferKernelOps;

/// Column-major (structure-of-arrays) view of a row block for the batch
/// kernels: one pointer per schema attribute, each column indexed by row.
/// Only the slot matching an attribute's kind is ever dereferenced, so
/// mismatched-kind entries may be null, and `categorical` itself may be
/// null for an all-numeric schema.
struct RowColumnsView {
  const double* const* numeric = nullptr;
  const int32_t* const* categorical = nullptr;
};

/// An immutable, cache-friendly compilation of a DecisionTree for batch
/// scoring.
///
/// The training-side DecisionTree is an array of fat TreeNode structs,
/// each dragging a Split (with its own heap-allocated categorical subset)
/// and a heap-allocated class_counts vector through cache on every
/// descent. CompiledTree re-lays the same tree out as structure-of-arrays:
/// three contiguous hot arrays (`int16 attr`, `float threshold`,
/// `int32 left/right`) drive the descent loop, and everything rare —
/// categorical subsets, linear-combination splits, thresholds that do not
/// round-trip through float — lives in small side tables reached through a
/// sentinel in `attr`. Node order is a layout choice (infer/layout.h):
/// depth-first preorder or cache-blocked breadth-first superblocks — the
/// only ordering invariant descent relies on is that children point
/// strictly forward, which FromBlob validates.
///
/// Storage: a CompiledTree is a *view*. All of its arrays live inside one
/// relocatable `.cmpb` blob (io/model_blob.h) which the tree keeps alive
/// through a shared_ptr — whether that blob was packed in memory by
/// Compile(), read in one gulp, or mmap'd straight off disk, the view
/// code is identical and the bytes are identical. Copying a CompiledTree
/// copies pointers and bumps the blob refcount, which is what lets a
/// serving process hand out a model version to in-flight batches and
/// retire the bytes only when the last batch drains.
///
/// Predictions are bit-exact with DecisionTree::Classify: numeric
/// comparisons stay in double (an inline float threshold is only used
/// when widening it back to double reproduces the trained threshold
/// exactly; otherwise the split is routed to the wide side table), and
/// linear-split coefficients are kept in double.
///
/// Per-node encoding, for node i (children interleaved so one indexed
/// load `children[2i + went_right]` replaces a branchy select — descent
/// direction becomes a data dependency, not a branch to mispredict):
///   attr[i] >= 0      numeric split on attribute attr[i]:
///                     value <= (double)threshold[i] routes left
///   attr[i] == kLeaf  leaf: children[2i] is the ClassId, children[2i+1]
///                     the leaf index into the probability table
///   attr[i] == kCat   categorical split: threshold[i] bit-casts to an
///                     index into cat_splits()
///   attr[i] == kLin   linear split a*x + b*y <= c: threshold[i]
///                     bit-casts to an index into lin_splits()
///   attr[i] == kWide  numeric split whose double threshold (or >int16
///                     attribute id) does not fit inline: threshold[i]
///                     bit-casts to an index into wide_splits()
class CompiledTree {
 public:
  static constexpr int16_t kLeaf = -1;
  static constexpr int16_t kCat = -2;
  static constexpr int16_t kLin = -3;
  static constexpr int16_t kWide = -4;

  /// One node's hot fields fused into a single 16-byte record, plus a
  /// parallel int32 attribute array (TreeNodesView::fused_attr), so a
  /// descent step touches one line for the split and one densely-packed
  /// line for the classification — where the blob sections would spread
  /// it over three or four (attr, threshold, children and — for most
  /// real trees — a wide side-table entry). Derived at bind time, never
  /// serialized. Two deliberate resolutions happen here:
  ///   - kWide nodes are folded into plain numeric form: the parallel
  ///     attr holds the side entry's attribute and `threshold` its
  ///     exact double cut, so the (typically dominant) wide population
  ///     costs the kernels nothing extra.
  ///   - inline float thresholds are pre-widened to double — the same
  ///     static_cast the scalar walker performs per visit — so compares
  ///     against `threshold` are byte-identical to the array walk.
  /// kCat/kLin keep their sentinel in the parallel attr and smuggle
  /// their side-table index through the (otherwise unused) threshold
  /// slot as a bit-cast int64. The vector tiers both service lanes and
  /// gather from these arrays; the scalar walkers stay on the blob
  /// sections (they are the reference).
  struct FusedNode {
    double threshold = 0.0;
    int32_t left = 0;
    int32_t right = 0;

    int32_t SideIndex() const {
      return static_cast<int32_t>(std::bit_cast<int64_t>(threshold));
    }
  };

  /// Categorical side entry: attribute plus a [offset, offset+card) slice
  /// of the shared membership-bit pool; bit v set routes value v left.
  struct CatSplit {
    int32_t attr = 0;
    int32_t offset = 0;
    int32_t card = 0;
  };

  /// Linear side entry: a*x + b*y <= c routes left (coefficients in
  /// double to match Split::RoutesLeft bit for bit).
  struct LinSplit {
    int32_t x = 0;
    int32_t y = 0;
    double a = 0.0;
    double b = 0.0;
    double c = 0.0;
  };

  /// Numeric side entry for thresholds float cannot represent.
  /// `reserved` names the bytes the compiler would otherwise insert as
  /// alignment padding: these structs are memcpy'd into the blob, and
  /// unnamed padding has indeterminate content — the same model would
  /// pack to different bytes run to run, breaking the byte-identical
  /// blob contract (PackModelBlob == SaveModelBlob == compile-from-text).
  struct WideSplit {
    int32_t attr = 0;
    int32_t reserved = 0;
    double threshold = 0.0;
  };

  CompiledTree() = default;

  /// Compiles `tree` into the flat layout, packed into an in-memory
  /// `.cmpb` blob (byte-identical to what SaveModelBlob writes for the
  /// same tree). Unreachable nodes are dropped; leaf class counts are
  /// normalized into per-class probabilities (a leaf with no recorded
  /// counts gets probability 1 on its predicted class). An empty input
  /// tree yields an empty() CompiledTree.
  static CompiledTree Compile(const DecisionTree& tree);

  /// Binds a view onto tree `tree_index` of a parsed blob, validating
  /// the section table and every node against the blob's own bounds
  /// (children in range and strictly forward — descent on a hostile
  /// blob cannot loop or index out of bounds; side-table and leaf
  /// indices in range; attribute ids valid for `schema`). On failure
  /// returns false, fills `error`, and leaves `out` empty.
  static bool FromBlob(std::shared_ptr<const ModelBlob> blob,
                       std::shared_ptr<const Schema> schema,
                       uint32_t tree_index, CompiledTree* out,
                       std::string* error);

  bool empty() const { return num_nodes_ == 0; }
  int num_nodes() const { return num_nodes_; }
  int num_leaves() const { return num_leaves_; }
  int32_t num_classes() const { return num_classes_; }
  /// Valid only for a non-empty tree.
  const Schema& schema() const { return *schema_; }
  std::shared_ptr<const Schema> shared_schema() const { return schema_; }
  /// The blob whose memory this view points into (null only for a
  /// default-constructed or empty tree).
  const std::shared_ptr<const ModelBlob>& storage() const { return storage_; }

  /// Index (into the leaf tables) of the leaf record `r` of `ds` lands in.
  int32_t LeafIndexOf(const Dataset& ds, RecordId r) const {
    return Descend(DatasetRow{&ds, r});
  }

  /// Batch descent: fills `out[0 .. end-begin)` with the leaf index of
  /// records [begin, end) of `ds`. Routes through the active vector tier
  /// (LeafIndicesOfColumns) — the dataset already stores columns, so the
  /// adapter is just an array of column pointers.
  void LeafIndicesOf(const Dataset& ds, RecordId begin, RecordId end,
                     int32_t* out) const;

  /// Batch descent over a column-major row block: fills
  /// `out[0 .. end-begin)` with the leaf index rows [begin, end) of
  /// `rows` land in, using the requested kernel tier (`ops` null means
  /// the active tier). Predictions are byte-identical to PredictRow
  /// under every tier; passing `ops` explicitly is for tests and benches
  /// that pin a tier regardless of the global dispatch.
  void LeafIndicesOfColumns(const RowColumnsView& rows, int64_t begin,
                            int64_t end, int32_t* out,
                            const InferKernelOps* ops = nullptr) const;

  /// The pre-SIMD batch path: template gang descent straight off the
  /// Dataset accessors, kept intact as the differential and benchmark
  /// baseline for the vector tiers (this was LeafIndicesOf before they
  /// existed).
  void LeafIndicesOfGang(const Dataset& ds, RecordId begin, RecordId end,
                         int32_t* out) const {
    DescendRange(begin, end, out,
                 [&ds](RecordId r) { return DatasetRow{&ds, r}; });
  }

  /// Same over raw dense rows (layout as in LeafIndexOfRow, rows
  /// row-major with one slot per schema attribute).
  void LeafIndicesOfRows(const double* numeric, const int32_t* categorical,
                         int64_t begin, int64_t end, int32_t* out) const {
    const int32_t na = schema_->num_attrs();
    DescendRange(begin, end, out, [=](int64_t i) {
      return RawRow{numeric + i * na,
                    categorical == nullptr ? nullptr : categorical + i * na};
    });
  }

  /// Same descent over a raw dense row: both arrays are indexed by AttrId
  /// and sized schema().num_attrs(); only the slot matching each
  /// attribute's kind is ever read. `categorical` may be null for an
  /// all-numeric schema.
  int32_t LeafIndexOfRow(const double* numeric,
                         const int32_t* categorical) const {
    return Descend(RawRow{numeric, categorical});
  }

  /// Predicted class for record `r` of `ds`; identical to
  /// DecisionTree::Classify on the source tree.
  ClassId Predict(const Dataset& ds, RecordId r) const {
    return leaf_class(LeafIndexOf(ds, r));
  }

  ClassId PredictRow(const double* numeric, const int32_t* categorical) const {
    return leaf_class(LeafIndexOfRow(numeric, categorical));
  }

  /// Majority class of leaf `leaf_index`.
  ClassId leaf_class(int32_t leaf_index) const {
    return leaf_class_[leaf_index];
  }

  /// `num_classes()` training-frequency probabilities for leaf
  /// `leaf_index`; non-negative, summing to 1.
  const float* leaf_probs(int32_t leaf_index) const {
    return leaf_probs_ +
           static_cast<size_t>(leaf_index) * static_cast<size_t>(num_classes_);
  }

  std::span<const CatSplit> cat_splits() const {
    return {cat_splits_, static_cast<size_t>(num_cat_)};
  }
  std::span<const LinSplit> lin_splits() const {
    return {lin_splits_, static_cast<size_t>(num_lin_)};
  }
  std::span<const WideSplit> wide_splits() const {
    return {wide_splits_, static_cast<size_t>(num_wide_)};
  }

  /// Rows descended in lockstep by the batch path.
  static constexpr int kLanes = 8;

  /// Raw-pointer snapshot of this tree's arrays, the form the per-ISA
  /// batch kernels (infer/infer_kernels.h) traverse. Defined inline
  /// after the class.
  TreeNodesView nodes_view() const;

 private:
  struct DatasetRow {
    const Dataset* ds;
    RecordId r;
    double Numeric(int32_t a) const { return ds->numeric(a, r); }
    int32_t Categorical(int32_t a) const { return ds->categorical(a, r); }
  };
  struct RawRow {
    const double* numeric;
    const int32_t* categorical;
    double Numeric(int32_t a) const { return numeric[a]; }
    int32_t Categorical(int32_t a) const { return categorical[a]; }
  };

  static int32_t SideIndex(float threshold) {
    return std::bit_cast<int32_t>(threshold);
  }

  /// One descent step of lane `id`; leaves hold still, so lanes that
  /// finish early are harmless no-ops until the whole gang is done. The
  /// child select is arithmetic (`2*id + went_right`), never a branch:
  /// only the split-kind dispatch branches, and that is near-perfectly
  /// predicted on trees dominated by one split kind. NaN feature values
  /// fail `<=` and route right, matching Split::RoutesLeft.
  template <typename Row>
  int32_t Step(int32_t id, const Row& row) const {
    const int16_t a = attr_[id];
    double x, t;
    if (a >= 0) {
      x = row.Numeric(a);
      t = static_cast<double>(threshold_[id]);
    } else if (a == kLeaf) {
      return id;
    } else if (a == kWide) {
      const WideSplit& s = wide_splits_[SideIndex(threshold_[id])];
      x = row.Numeric(s.attr);
      t = s.threshold;
    } else if (a == kLin) {
      const LinSplit& s = lin_splits_[SideIndex(threshold_[id])];
      x = s.a * row.Numeric(s.x) + s.b * row.Numeric(s.y);
      t = s.c;
    } else {
      const CatSplit& s = cat_splits_[SideIndex(threshold_[id])];
      const int32_t v = row.Categorical(s.attr);
      const bool in_left = v >= 0 && v < s.card && cat_bits_[s.offset + v];
      return children_[2 * id + static_cast<int32_t>(!in_left)];
    }
    return children_[2 * id + static_cast<int32_t>(!(x <= t))];
  }

  /// Single-row descent, used by Predict and for batch remainders.
  template <typename Row>
  int32_t Descend(const Row& row) const {
    int32_t id = 0;
    while (attr_[id] != kLeaf) id = Step(id, row);
    return children_[2 * id + 1];
  }

  /// Gang descent: kLanes rows walk the tree concurrently. Each lane's
  /// step is a short chain of dependent loads ending in a branchless
  /// select, so the lanes' chains overlap in the memory pipeline instead
  /// of serializing behind one row's cache misses. A lane that reaches a
  /// leaf immediately refills with the next row (no lockstep: short
  /// descents never wait for deep ones), until the range runs dry and the
  /// last in-flight lanes drain scalar.
  template <typename Index, typename RowAt>
  void DescendRange(Index begin, Index end, int32_t* out,
                    const RowAt& row_at) const {
    if (end - begin < static_cast<Index>(kLanes)) {
      for (Index i = begin; i < end; ++i) out[i - begin] = Descend(row_at(i));
      return;
    }
    int32_t ids[kLanes];
    Index rows[kLanes];
    Index next = begin;
    for (int l = 0; l < kLanes; ++l) {
      ids[l] = 0;
      rows[l] = next++;
    }
    bool done_lane[kLanes] = {};
    int retired = 0;  // lanes that found the range dry on refill
    while (retired == 0) {
      for (int l = 0; l < kLanes; ++l) ids[l] = Step(ids[l], row_at(rows[l]));
      for (int l = 0; l < kLanes; ++l) {
        if (attr_[ids[l]] != kLeaf) continue;
        out[rows[l] - begin] = children_[2 * ids[l] + 1];
        if (next < end) {
          ids[l] = 0;
          rows[l] = next++;
        } else {
          done_lane[l] = true;
          ++retired;
        }
      }
    }
    for (int l = 0; l < kLanes; ++l) {
      if (done_lane[l]) continue;
      int32_t id = ids[l];
      while (attr_[id] != kLeaf) id = Step(id, row_at(rows[l]));
      out[rows[l] - begin] = children_[2 * id + 1];
    }
  }

  // Cold identity; the schema is shared with every other tree bound to
  // the same blob.
  std::shared_ptr<const Schema> schema_;
  std::shared_ptr<const ModelBlob> storage_;
  int32_t num_classes_ = 0;
  int32_t num_nodes_ = 0;
  int32_t num_leaves_ = 0;

  // Hot structure-of-arrays node views into the blob (preorder, root at
  // 0). Children are interleaved: children_[2i] left, children_[2i+1]
  // right — for leaves, the class id and the leaf-table index
  // respectively.
  const int16_t* attr_ = nullptr;
  const float* threshold_ = nullptr;
  const int32_t* children_ = nullptr;

  // Cold side-table views.
  const CatSplit* cat_splits_ = nullptr;
  const uint8_t* cat_bits_ = nullptr;
  const LinSplit* lin_splits_ = nullptr;
  const WideSplit* wide_splits_ = nullptr;
  int32_t num_cat_ = 0;
  int64_t num_cat_bits_ = 0;
  int32_t num_lin_ = 0;
  int32_t num_wide_ = 0;

  // Leaf payload views, indexed by leaf index.
  const ClassId* leaf_class_ = nullptr;
  const float* leaf_probs_ = nullptr;  // num_leaves x num_classes, row-major

  // Bind-time fused node records and their parallel attribute array
  // (see FusedNode); shared so tree copies stay cheap. Null only for an
  // empty (default-constructed) tree. fused_attr_slots_ is one past the
  // largest numeric attribute any fused record references — the width a
  // kernel needs for a row-major feature staging buffer.
  std::shared_ptr<const std::vector<FusedNode>> fused_store_;
  std::shared_ptr<const std::vector<int32_t>> fused_attr_store_;
  int32_t fused_attr_slots_ = 0;
};

/// The hot arrays of one CompiledTree as plain pointers. This is what
/// the per-ISA kernels take: a translation unit compiled with -mavx2
/// must never inline CompiledTree methods (they would pick up AVX2
/// codegen and get called from non-AVX2 hosts via the baseline build),
/// so the kernels see only this POD view.
struct TreeNodesView {
  const int16_t* attr = nullptr;
  const float* threshold = nullptr;
  const int32_t* children = nullptr;
  const CompiledTree::CatSplit* cat_splits = nullptr;
  const uint8_t* cat_bits = nullptr;
  const CompiledTree::LinSplit* lin_splits = nullptr;
  const CompiledTree::WideSplit* wide_splits = nullptr;
  const CompiledTree::FusedNode* fused = nullptr;
  const int32_t* fused_attr = nullptr;
  // One past the largest numeric attribute id in `fused_attr`: the row
  // width of a row-major feature staging buffer covering every numeric
  // split in this tree.
  int32_t fused_attr_slots = 0;
};

inline TreeNodesView CompiledTree::nodes_view() const {
  return TreeNodesView{attr_,
                       threshold_,
                       children_,
                       cat_splits_,
                       cat_bits_,
                       lin_splits_,
                       wide_splits_,
                       fused_store_ != nullptr ? fused_store_->data()
                                               : nullptr,
                       fused_attr_store_ != nullptr
                           ? fused_attr_store_->data()
                           : nullptr,
                       fused_attr_slots_};
}

// The blob stores these structs raw; pin their layout so a blob written
// by any build of this library parses in any other.
static_assert(std::is_trivially_copyable_v<CompiledTree::CatSplit> &&
              sizeof(CompiledTree::CatSplit) == 12);
static_assert(std::is_trivially_copyable_v<CompiledTree::LinSplit> &&
              sizeof(CompiledTree::LinSplit) == 32);
static_assert(std::is_trivially_copyable_v<CompiledTree::WideSplit> &&
              sizeof(CompiledTree::WideSplit) == 16);
// Never serialized, but the vector kernels gather the threshold double
// and the {left,right} pair as the record's 8-byte halves, so the
// layout is load-bearing anyway.
static_assert(std::is_trivially_copyable_v<CompiledTree::FusedNode> &&
              sizeof(CompiledTree::FusedNode) == 16);

/// The mutable staging form of one compiled tree: plain vectors filled by
/// the compiler pass, then packed verbatim into blob sections. Exists so
/// the packer (infer/model_io.h) and Compile() share one compilation and
/// one byte layout.
struct CompiledTreeArrays {
  int32_t num_classes = 0;
  std::vector<int16_t> attr;
  std::vector<float> threshold;
  std::vector<int32_t> children;
  std::vector<CompiledTree::CatSplit> cat_splits;
  std::vector<uint8_t> cat_bits;
  std::vector<CompiledTree::LinSplit> lin_splits;
  std::vector<CompiledTree::WideSplit> wide_splits;
  std::vector<ClassId> leaf_class;
  std::vector<float> leaf_probs;
};

/// Flattens `tree` (non-empty) into preorder structure-of-arrays form;
/// the semantics (side tables, float-threshold gating, leaf-prob
/// normalization) are documented on CompiledTree.
CompiledTreeArrays CompileTreeToArrays(const DecisionTree& tree);

}  // namespace cmp

#endif  // CMP_INFER_COMPILED_TREE_H_
