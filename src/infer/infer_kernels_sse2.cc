// SSE2 tier of the batch traversal kernels (see infer_kernels.h). SSE2
// is the x86-64 architectural baseline, so this file needs no special
// compile flags there; it exists for hosts (or forced selections)
// without OS-enabled AVX state. Without gathers, node fields load
// scalar into lane buffers — only the double compare and the branchless
// child select vectorize — so the tier's win over scalar is modest and
// comes from retiring four compares per cmppd. Predictions are
// byte-identical to the scalar walker: same double loads, same ordered
// `<=` (NaN routes right), side-table lanes resolved by the shared
// scalar Step.

#include "infer/infer_kernels.h"

#if defined(__SSE2__)

#include <emmintrin.h>

#include <bit>
#include <cstdint>

#include "infer/infer_kernels_impl.h"

namespace cmp {

namespace {

constexpr int kLanes = 4;

void DescendBlockSse2(const TreeNodesView& t, const RowColumnsView& rows,
                      int64_t begin, int64_t end, int32_t* out) {
  if (end - begin < kLanes) {
    for (int64_t i = begin; i < end; ++i) {
      out[i - begin] = infer_impl::Descend(t, rows, i);
    }
    return;
  }
  int32_t ids[kLanes];
  int64_t rws[kLanes];
  alignas(16) double x[kLanes];
  alignas(16) double cut[kLanes];
  bool done_lane[kLanes] = {};
  int64_t next = begin;
  for (int l = 0; l < kLanes; ++l) {
    ids[l] = 0;
    rws[l] = next++;
  }
  bool dry = false;  // a lane found the range empty on refill
  while (true) {
    // Lane service: retire leaves (refilling from the range), step
    // categorical lanes scalar, and resolve every lane to a plain
    // (x, cut) double compare.
    for (int l = 0; l < kLanes && !dry; ++l) {
      for (;;) {
        const int32_t id = ids[l];
        const int16_t a = t.attr[id];
        if (a >= 0) {
          x[l] = rows.numeric[a][rws[l]];
          cut[l] = static_cast<double>(t.threshold[id]);
          break;
        }
        if (a == CompiledTree::kLeaf) {
          out[rws[l] - begin] = t.children[2 * id + 1];
          if (next < end) {
            ids[l] = 0;
            rws[l] = next++;
            continue;
          }
          done_lane[l] = true;
          dry = true;
          break;
        }
        if (a == CompiledTree::kWide) {
          const CompiledTree::WideSplit& s =
              t.wide_splits[std::bit_cast<int32_t>(t.threshold[id])];
          x[l] = rows.numeric[s.attr][rws[l]];
          cut[l] = s.threshold;
          break;
        }
        if (a == CompiledTree::kLin) {
          const CompiledTree::LinSplit& s =
              t.lin_splits[std::bit_cast<int32_t>(t.threshold[id])];
          x[l] = s.a * rows.numeric[s.x][rws[l]] +
                 s.b * rows.numeric[s.y][rws[l]];
          cut[l] = s.c;
          break;
        }
        ids[l] = infer_impl::Step(t, rows, id, rws[l]);  // categorical
      }
    }
    if (dry) break;
    // Four ordered compares at once; lane bit set means x <= cut
    // (quiet NaN compares false, routing right like the scalar walker).
    const int le =
        _mm_movemask_pd(_mm_cmple_pd(_mm_load_pd(x), _mm_load_pd(cut))) |
        (_mm_movemask_pd(_mm_cmple_pd(_mm_load_pd(x + 2), _mm_load_pd(cut + 2)))
         << 2);
    for (int l = 0; l < kLanes; ++l) {
      ids[l] = t.children[2 * ids[l] + ((~le >> l) & 1)];
    }
  }
  // Range dry: lanes still in flight (their ids unstepped since the last
  // compare) finish scalar, exactly like the gang walker's drain.
  for (int l = 0; l < kLanes; ++l) {
    if (done_lane[l]) continue;
    out[rws[l] - begin] = infer_impl::DescendFrom(t, rows, ids[l], rws[l]);
  }
}

constexpr InferKernelOps kSse2Ops = {DescendBlockSse2};

}  // namespace

const InferKernelOps* Sse2InferKernelOpsOrNull() { return &kSse2Ops; }

}  // namespace cmp

#else  // !defined(__SSE2__)

namespace cmp {

const InferKernelOps* Sse2InferKernelOpsOrNull() { return nullptr; }

}  // namespace cmp

#endif  // defined(__SSE2__)
