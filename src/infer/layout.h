#ifndef CMP_INFER_LAYOUT_H_
#define CMP_INFER_LAYOUT_H_

#include <cstdint>

#include "infer/compiled_tree.h"

namespace cmp {

/// How a compiled tree's node arrays are ordered inside a `.cmpb` blob.
///
/// Descent never depends on the ordering — only on the invariant that
/// internal children point strictly forward, which both layouts keep —
/// so a reader that knows nothing about layouts loads either one
/// correctly. The enum is recorded in the blob (SectionKind::kNodeLayout,
/// a versioned global section; blobs written before it existed are
/// preorder) so tools can report what they are serving and tests can
/// pack both forms deliberately.
enum class NodeLayout : uint32_t {
  /// Depth-first preorder (left child adjacent to its parent): the
  /// layout every blob carried before the blocked pass existed.
  kPreorder = 0,
  /// Breadth-first cache-blocked superblocks (ApplyBlockedLayout): the
  /// serving default since the vectorized batch path landed.
  kBlocked = 1,
};

/// Version of the blocked-layout pass written next to the enum in the
/// kNodeLayout section, so a future reordering heuristic can be told
/// apart from this one without a container version bump.
inline constexpr uint32_t kNodeLayoutVersion = 1;

/// Display name ("preorder", "blocked").
const char* NodeLayoutName(NodeLayout layout);

/// Nodes per superblock. 32 nodes make the per-block slices of the hot
/// arrays whole cache lines — 64 B of attr, 128 B of threshold, 256 B of
/// children — and the blob writer aligns those sections to 64 bytes, so
/// an mmap'd block never straddles an extra line.
inline constexpr int32_t kLayoutBlockNodes = 32;

/// Reorders `arrays` (one compiled tree, any current order with strictly
/// forward children) in place into cache-blocked form: a FIFO of subtree
/// roots is drained by filling one superblock at a time breadth-first —
/// the root block holds the top ~5 levels every descent touches, each
/// boundary child starts a later block of its own subtree's top levels,
/// and within a block children sit a few slots (not a few pages) after
/// their parent. Children indices are rewritten to the permuted ids;
/// leaf payloads (class, leaf-table index) and the side tables are
/// untouched, so predictions are identical by construction. The
/// strictly-forward-children invariant is preserved: BFS order puts
/// in-block children after their parent, and boundary children land in
/// blocks queued strictly later.
void ApplyBlockedLayout(CompiledTreeArrays* arrays);

}  // namespace cmp

#endif  // CMP_INFER_LAYOUT_H_
