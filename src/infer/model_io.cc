#include "infer/model_io.h"

#include <cstring>
#include <fstream>

namespace cmp {

namespace {

// Caps for the schema decoder: a corrupt length prefix must fail the
// parse, not drive a multi-GB allocation.
constexpr uint32_t kMaxSchemaAttrs = 1u << 20;
constexpr uint32_t kMaxSchemaClasses = 1u << 20;
constexpr uint32_t kMaxNameBytes = 1u << 16;

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  const size_t at = out->size();
  out->resize(at + sizeof(v));
  std::memcpy(out->data() + at, &v, sizeof(v));
}

void PutI32(std::vector<uint8_t>* out, int32_t v) {
  const size_t at = out->size();
  out->resize(at + sizeof(v));
  std::memcpy(out->data() + at, &v, sizeof(v));
}

void PutString(std::vector<uint8_t>* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->insert(out->end(), s.begin(), s.end());
}

/// Bounds-checked cursor over the schema section's bytes.
struct Reader {
  const uint8_t* p;
  uint64_t left;

  bool U32(uint32_t* v) {
    if (left < sizeof(*v)) return false;
    std::memcpy(v, p, sizeof(*v));
    p += sizeof(*v);
    left -= sizeof(*v);
    return true;
  }
  bool I32(int32_t* v) {
    if (left < sizeof(*v)) return false;
    std::memcpy(v, p, sizeof(*v));
    p += sizeof(*v);
    left -= sizeof(*v);
    return true;
  }
  bool U8(uint8_t* v) {
    if (left < 1) return false;
    *v = *p++;
    --left;
    return true;
  }
  bool Str(std::string* s) {
    uint32_t len = 0;
    if (!U32(&len) || len > kMaxNameBytes || left < len) return false;
    s->assign(reinterpret_cast<const char*>(p), len);
    p += len;
    left -= len;
    return true;
  }
};

std::vector<uint8_t> EncodeSchema(const Schema& schema) {
  std::vector<uint8_t> out;
  PutU32(&out, static_cast<uint32_t>(schema.num_attrs()));
  for (AttrId a = 0; a < schema.num_attrs(); ++a) {
    const AttrInfo& info = schema.attr(a);
    PutString(&out, info.name);
    out.push_back(info.kind == AttrKind::kNumeric ? 0 : 1);
    PutI32(&out, info.cardinality);
  }
  PutU32(&out, static_cast<uint32_t>(schema.num_classes()));
  for (ClassId c = 0; c < schema.num_classes(); ++c) {
    PutString(&out, schema.class_name(c));
  }
  return out;
}

bool DecodeSchema(const uint8_t* data, uint64_t bytes, Schema* out) {
  Reader r{data, bytes};
  uint32_t num_attrs = 0;
  if (!r.U32(&num_attrs) || num_attrs > kMaxSchemaAttrs) return false;
  std::vector<AttrInfo> attrs(num_attrs);
  for (AttrInfo& info : attrs) {
    uint8_t kind = 0;
    if (!r.Str(&info.name) || !r.U8(&kind) || kind > 1 ||
        !r.I32(&info.cardinality)) {
      return false;
    }
    info.kind = kind == 0 ? AttrKind::kNumeric : AttrKind::kCategorical;
    if (info.kind == AttrKind::kCategorical && info.cardinality < 0) {
      return false;
    }
  }
  uint32_t num_classes = 0;
  if (!r.U32(&num_classes) || num_classes > kMaxSchemaClasses) return false;
  std::vector<std::string> class_names(num_classes);
  for (std::string& name : class_names) {
    if (!r.Str(&name)) return false;
  }
  if (r.left != 0) return false;  // trailing garbage
  *out = Schema(std::move(attrs), std::move(class_names));
  return true;
}

bool PackFail(std::string* error, const std::string& what) {
  if (error != nullptr) *error = what;
  return false;
}

}  // namespace

std::vector<uint8_t> PackModelBlob(
    const std::vector<const DecisionTree*>& trees, const PackOptions& pack,
    std::string* error) {
  if (trees.empty()) {
    PackFail(error, "no trees to pack");
    return {};
  }
  for (const DecisionTree* t : trees) {
    if (t == nullptr || t->empty()) {
      PackFail(error, "cannot pack an empty tree");
      return {};
    }
    if (!(t->schema() == trees.front()->schema())) {
      PackFail(error, "trees disagree on schema");
      return {};
    }
  }
  const Schema& schema = trees.front()->schema();
  const uint32_t num_classes =
      static_cast<uint32_t>(std::max<int32_t>(schema.num_classes(), 1));

  BlobWriter writer(static_cast<uint32_t>(trees.size()), num_classes);
  const std::vector<uint8_t> schema_bytes = EncodeSchema(schema);
  writer.Add(kGlobalSection, SectionKind::kSchema, schema_bytes.data(),
             schema_bytes.size(), 1);
  const uint32_t layout_payload[2] = {static_cast<uint32_t>(pack.layout),
                                      kNodeLayoutVersion};
  writer.Add(kGlobalSection, SectionKind::kNodeLayout, layout_payload, 2,
             sizeof(uint32_t));
  for (uint32_t i = 0; i < trees.size(); ++i) {
    CompiledTreeArrays a = CompileTreeToArrays(*trees[i]);
    if (pack.layout == NodeLayout::kBlocked) ApplyBlockedLayout(&a);
    writer.Add(i, SectionKind::kNodeAttr, a.attr.data(), a.attr.size(),
               sizeof(int16_t));
    writer.Add(i, SectionKind::kThreshold, a.threshold.data(),
               a.threshold.size(), sizeof(float));
    writer.Add(i, SectionKind::kChildren, a.children.data(),
               a.children.size(), sizeof(int32_t));
    writer.Add(i, SectionKind::kCatSplits, a.cat_splits.data(),
               a.cat_splits.size(), sizeof(CompiledTree::CatSplit));
    writer.Add(i, SectionKind::kCatBits, a.cat_bits.data(), a.cat_bits.size(),
               1);
    writer.Add(i, SectionKind::kLinSplits, a.lin_splits.data(),
               a.lin_splits.size(), sizeof(CompiledTree::LinSplit));
    writer.Add(i, SectionKind::kWideSplits, a.wide_splits.data(),
               a.wide_splits.size(), sizeof(CompiledTree::WideSplit));
    writer.Add(i, SectionKind::kLeafClass, a.leaf_class.data(),
               a.leaf_class.size(), sizeof(ClassId));
    writer.Add(i, SectionKind::kLeafProbs, a.leaf_probs.data(),
               a.leaf_probs.size(), sizeof(float));
  }
  return writer.Finish();
}

std::vector<uint8_t> PackModelBlob(
    const std::vector<const DecisionTree*>& trees, std::string* error) {
  return PackModelBlob(trees, PackOptions{}, error);
}

CompiledModel CompileModel(const std::vector<const DecisionTree*>& trees,
                           const PackOptions& pack, std::string* error) {
  CompiledModel out;
  std::vector<uint8_t> bytes = PackModelBlob(trees, pack, error);
  if (bytes.empty()) return out;
  std::shared_ptr<const ModelBlob> blob =
      ModelBlob::FromBytes(std::move(bytes), error);
  if (blob == nullptr) return out;
  ModelFromBlob(std::move(blob), &out, error);
  return out;
}

CompiledModel CompileModel(const std::vector<const DecisionTree*>& trees,
                           std::string* error) {
  return CompileModel(trees, PackOptions{}, error);
}

bool SaveModelBlob(const std::vector<const DecisionTree*>& trees,
                   const PackOptions& pack, const std::string& path,
                   std::string* error) {
  const std::vector<uint8_t> bytes = PackModelBlob(trees, pack, error);
  if (bytes.empty()) return false;
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os.is_open()) return PackFail(error, "cannot write " + path);
  os.write(reinterpret_cast<const char*>(bytes.data()),
           static_cast<std::streamsize>(bytes.size()));
  if (!os.good()) return PackFail(error, "short write on " + path);
  return true;
}

bool SaveModelBlob(const std::vector<const DecisionTree*>& trees,
                   const std::string& path, std::string* error) {
  return SaveModelBlob(trees, PackOptions{}, path, error);
}

bool ModelFromBlob(std::shared_ptr<const ModelBlob> blob, CompiledModel* out,
                   std::string* error) {
  *out = CompiledModel();
  if (blob == nullptr) return PackFail(error, "null blob");
  const BlobSection* schema_section =
      blob->Find(kGlobalSection, SectionKind::kSchema);
  if (schema_section == nullptr) {
    return PackFail(error, "blob has no schema section");
  }
  Schema schema;
  if (!DecodeSchema(blob->SectionData<uint8_t>(*schema_section),
                    schema_section->bytes, &schema)) {
    return PackFail(error, "malformed schema section");
  }
  const uint32_t expect_classes =
      static_cast<uint32_t>(std::max<int32_t>(schema.num_classes(), 1));
  if (blob->num_classes() != expect_classes) {
    return PackFail(error, "header class count disagrees with schema");
  }
  auto shared_schema = std::make_shared<const Schema>(std::move(schema));

  NodeLayout layout = NodeLayout::kPreorder;  // pre-layout blobs
  if (const BlobSection* layout_section =
          blob->Find(kGlobalSection, SectionKind::kNodeLayout)) {
    if (layout_section->bytes < 2 * sizeof(uint32_t)) {
      return PackFail(error, "malformed node-layout section");
    }
    uint32_t vals[2];
    std::memcpy(vals, blob->SectionData<uint8_t>(*layout_section),
                sizeof(vals));
    if (vals[0] > static_cast<uint32_t>(NodeLayout::kBlocked)) {
      return PackFail(error, "unknown node layout");
    }
    layout = static_cast<NodeLayout>(vals[0]);
  }

  CompiledModel model;
  model.schema = shared_schema;
  model.blob = blob;
  model.layout = layout;
  model.trees.resize(blob->num_trees());
  for (uint32_t i = 0; i < blob->num_trees(); ++i) {
    if (!CompiledTree::FromBlob(blob, shared_schema, i, &model.trees[i],
                                error)) {
      return false;
    }
  }
  *out = std::move(model);
  return true;
}

bool LoadCompiledModel(const std::string& path, CompiledModel* out,
                       std::string* error) {
  *out = CompiledModel();
  std::shared_ptr<const ModelBlob> blob = ModelBlob::Load(path, error);
  if (blob == nullptr) return false;
  return ModelFromBlob(std::move(blob), out, error);
}

}  // namespace cmp
