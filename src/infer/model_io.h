#ifndef CMP_INFER_MODEL_IO_H_
#define CMP_INFER_MODEL_IO_H_

#include <memory>
#include <string>
#include <vector>

#include "common/schema.h"
#include "infer/compiled_tree.h"
#include "infer/layout.h"
#include "io/model_blob.h"
#include "tree/tree.h"

namespace cmp {

/// Packing knobs for PackModelBlob / CompileModel / SaveModelBlob.
struct PackOptions {
  /// Node ordering written for each tree. Blocked is the default since
  /// the vectorized batch path landed; preorder reproduces the original
  /// layout. Readers load either, and the choice never changes
  /// predictions — only cache behavior.
  NodeLayout layout = NodeLayout::kBlocked;
};

/// A compiled model ready to score: the shared schema plus one
/// CompiledTree view per member tree, all pointing into one `.cmpb`
/// blob. Copies are cheap (views + refcounts); the blob's bytes live
/// until the last copy — and the last in-flight batch holding one —
/// goes away. A single tree is just the one-tree case; an ensemble is
/// the same blob with more tree sections.
struct CompiledModel {
  std::shared_ptr<const Schema> schema;
  std::shared_ptr<const ModelBlob> blob;
  std::vector<CompiledTree> trees;
  /// Node ordering recorded in the blob's kNodeLayout section; blobs
  /// written before that section existed load as kPreorder.
  NodeLayout layout = NodeLayout::kPreorder;

  bool empty() const { return trees.empty(); }
  int num_trees() const { return static_cast<int>(trees.size()); }
  int32_t num_classes() const {
    return trees.empty() ? 0 : trees.front().num_classes();
  }
};

/// Packs `trees` (at least one, all non-empty, sharing one schema) into
/// `.cmpb` blob bytes. Returns empty and fills `error` on invalid input.
std::vector<uint8_t> PackModelBlob(const std::vector<const DecisionTree*>& trees,
                                   const PackOptions& pack, std::string* error);
std::vector<uint8_t> PackModelBlob(const std::vector<const DecisionTree*>& trees,
                                   std::string* error);

/// Compiles `trees` into an in-memory blob-backed model. The backing
/// bytes are identical to PackModelBlob's (and thus to the file
/// SaveModelBlob writes), so "compiled in process" and "loaded from
/// disk" are the same model byte for byte.
CompiledModel CompileModel(const std::vector<const DecisionTree*>& trees,
                           const PackOptions& pack, std::string* error);
CompiledModel CompileModel(const std::vector<const DecisionTree*>& trees,
                           std::string* error);

/// Writes `trees` as a `.cmpb` file.
bool SaveModelBlob(const std::vector<const DecisionTree*>& trees,
                   const PackOptions& pack, const std::string& path,
                   std::string* error);
bool SaveModelBlob(const std::vector<const DecisionTree*>& trees,
                   const std::string& path, std::string* error);

/// Binds a CompiledModel onto an already-parsed blob: decodes the schema
/// section and validates + binds every tree view. On failure returns
/// false with `out` empty.
bool ModelFromBlob(std::shared_ptr<const ModelBlob> blob, CompiledModel* out,
                   std::string* error);

/// Loads a `.cmpb` file (mmap when possible) and binds a CompiledModel.
bool LoadCompiledModel(const std::string& path, CompiledModel* out,
                       std::string* error);

}  // namespace cmp

#endif  // CMP_INFER_MODEL_IO_H_
