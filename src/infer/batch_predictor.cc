#include "infer/batch_predictor.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace cmp {

BatchPredictor::BatchPredictor(const CompiledTree* tree, PredictOptions opts,
                               ThreadPool* pool)
    : tree_(tree), opts_(opts), pool_(pool) {
  assert(tree_ != nullptr && !tree_->empty());
  if (opts_.block_size <= 0) opts_.block_size = 2048;
  opts_.top_k = std::clamp(opts_.top_k, 1, tree_->num_classes());
  if (pool_ == nullptr) {
    owned_ = std::make_unique<ThreadPool>(opts_.num_threads);
    pool_ = owned_.get();
  }
}

template <typename LeafBlockFn>
BatchResult BatchPredictor::Run(int64_t n, ThreadPool* pool,
                                const LeafBlockFn& fill_leaves) const {
  BatchResult out;
  const int32_t nc = tree_->num_classes();
  const int k = opts_.top_k;
  const bool abstain = opts_.abstain_threshold > 0.0;
  out.labels.assign(static_cast<size_t>(n), kInvalidClass);
  if (opts_.want_probs) {
    out.probs.assign(static_cast<size_t>(n) * static_cast<size_t>(nc), 0.0f);
  }
  if (k > 1) {
    out.topk.assign(static_cast<size_t>(n) * static_cast<size_t>(k),
                    kInvalidClass);
  }

  // Each block writes disjoint ranges of the pre-sized outputs, so the
  // workers need no synchronization beyond ParallelFor's completion.
  // Scratch is leased, not allocated: steady-state blocks reuse warm
  // buffers from the predictor's pool.
  auto score_block = [&](int64_t begin, int64_t end) {
    ScratchLease lease(&scratch_);
    PredictScratch& s = *lease;
    s.leaves.resize(static_cast<size_t>(end - begin));
    fill_leaves(begin, end, s.leaves.data(), &s);
    std::vector<ClassId>& order = s.order;
    if (k > 1) order.resize(static_cast<size_t>(nc));
    for (int64_t i = begin; i < end; ++i) {
      const int32_t leaf = s.leaves[i - begin];
      const ClassId cls = tree_->leaf_class(leaf);
      const float* probs = tree_->leaf_probs(leaf);
      if (opts_.want_probs) {
        std::copy(probs, probs + nc,
                  out.probs.begin() + static_cast<size_t>(i) * nc);
      }
      if (k > 1) {
        std::iota(order.begin(), order.end(), 0);
        std::sort(order.begin(), order.end(), [&](ClassId a, ClassId b) {
          return probs[a] != probs[b] ? probs[a] > probs[b] : a < b;
        });
        std::copy(order.begin(), order.begin() + k,
                  out.topk.begin() + static_cast<size_t>(i) * k);
      }
      out.labels[i] =
          abstain && probs[cls] < opts_.abstain_threshold ? kInvalidClass
                                                          : cls;
    }
  };

  ThreadPool* p = pool != nullptr ? pool : pool_;
  p->ParallelFor(n, opts_.block_size, score_block);
  if (abstain) {
    out.num_abstained = std::count(out.labels.begin(), out.labels.end(),
                                   kInvalidClass);
  }
  return out;
}

BatchResult BatchPredictor::Predict(const Dataset& ds) const {
  return Predict(ds, nullptr);
}

BatchResult BatchPredictor::Predict(const Dataset& ds, ThreadPool* pool) const {
  const CompiledTree* tree = tree_;
  // The dataset is already columnar: build the per-attribute pointer
  // view once for the whole call, indexed by absolute record id.
  const Schema& schema = tree_->schema();
  const int32_t na = schema.num_attrs();
  std::vector<const double*> num(na, nullptr);
  std::vector<const int32_t*> cat(na, nullptr);
  bool any_cat = false;
  for (int32_t a = 0; a < na; ++a) {
    if (schema.is_numeric(a)) {
      num[a] = ds.numeric_column(a).data();
    } else {
      cat[a] = ds.categorical_column(a).data();
      any_cat = true;
    }
  }
  const RowColumnsView view{num.data(), any_cat ? cat.data() : nullptr};
  return Run(ds.num_records(), pool,
             [tree, &view](int64_t begin, int64_t end, int32_t* out,
                           PredictScratch*) {
               tree->LeafIndicesOfColumns(view, begin, end, out);
             });
}

BatchResult BatchPredictor::PredictRaw(const double* numeric,
                                       const int32_t* categorical,
                                       int64_t n) const {
  const CompiledTree* tree = tree_;
  return Run(n, nullptr,
             [tree, numeric, categorical](int64_t begin, int64_t end,
                                          int32_t* out, PredictScratch* s) {
               const RowColumnsView view = TransposeBlock(
                   tree->schema(), numeric, categorical, begin, end, s);
               tree->LeafIndicesOfColumns(view, 0, end - begin, out);
             });
}

BatchResult BatchPredictor::PredictColumns(
    const double* const* numeric_cols, const int32_t* const* categorical_cols,
    int64_t n) const {
  const CompiledTree* tree = tree_;
  const RowColumnsView view{numeric_cols, categorical_cols};
  return Run(n, nullptr,
             [tree, view](int64_t begin, int64_t end, int32_t* out,
                          PredictScratch*) {
               tree->LeafIndicesOfColumns(view, begin, end, out);
             });
}

}  // namespace cmp
