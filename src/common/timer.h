#ifndef CMP_COMMON_TIMER_H_
#define CMP_COMMON_TIMER_H_

#include <chrono>

namespace cmp {

/// Simple monotonic stopwatch.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Seconds elapsed since construction or the last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  void Reset() { start_ = Clock::now(); }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace cmp

#endif  // CMP_COMMON_TIMER_H_
