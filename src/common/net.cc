#include "common/net.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>

namespace cmp {

bool SendAll(int fd, const void* data, size_t size) {
  const char* p = static_cast<const char*>(data);
  size_t off = 0;
  while (off < size) {
    const ssize_t n = ::send(fd, p + off, size - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

bool SendAll(int fd, const std::string& data) {
  return SendAll(fd, data.data(), data.size());
}

bool SendLine(int fd, const std::string& line) {
  return SendAll(fd, line + "\n");
}

bool RecvAll(int fd, void* data, size_t size) {
  char* p = static_cast<char*>(data);
  size_t off = 0;
  while (off < size) {
    const ssize_t n = ::recv(fd, p + off, size - off, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    off += static_cast<size_t>(n);
  }
  return true;
}

bool LineReader::ReadLine(std::string* out) {
  while (true) {
    const size_t nl = buf_.find('\n');
    if (nl != std::string::npos) {
      out->assign(buf_, 0, nl);
      if (!out->empty() && out->back() == '\r') out->pop_back();
      buf_.erase(0, nl + 1);
      return true;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    buf_.append(chunk, static_cast<size_t>(n));
  }
}

namespace {

int FailListen(int fd, std::string* error, const std::string& what) {
  if (error != nullptr) *error = what + ": " + std::strerror(errno);
  if (fd >= 0) ::close(fd);
  return -1;
}

}  // namespace

int ListenTcp(const std::string& host, int port, int* bound_port,
              std::string* error) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return FailListen(fd, error, "socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    if (error != nullptr) *error = "bad listen address " + host;
    ::close(fd);
    return -1;
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return FailListen(fd, error, "bind " + host + ":" + std::to_string(port));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    return FailListen(fd, error, "getsockname");
  }
  if (bound_port != nullptr) *bound_port = ntohs(bound.sin_port);
  if (::listen(fd, 64) != 0) return FailListen(fd, error, "listen");
  return fd;
}

int ListenUnix(const std::string& path, std::string* error) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return FailListen(fd, error, "socket");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    if (error != nullptr) *error = "unix socket path too long";
    ::close(fd);
    return -1;
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  ::unlink(path.c_str());  // stale socket from a dead daemon
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return FailListen(fd, error, "bind " + path);
  }
  if (::listen(fd, 64) != 0) return FailListen(fd, error, "listen");
  return fd;
}

bool WritePortFile(const std::string& path, int port) {
  std::ofstream pf(path, std::ios::trunc);
  pf << port << "\n";
  return pf.good();
}

}  // namespace cmp
