#include "common/random.h"

#include <cmath>

namespace cmp {

namespace {

// splitmix64: used only to expand the user seed into generator state.
uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::Seed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
  has_spare_gaussian_ = false;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::UniformDouble() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(Next() % span);
}

double Rng::Gaussian() {
  if (has_spare_gaussian_) {
    has_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  double u;
  double v;
  double s;
  do {
    u = 2.0 * UniformDouble() - 1.0;
    v = 2.0 * UniformDouble() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double mul = std::sqrt(-2.0 * std::log(s) / s);
  spare_gaussian_ = v * mul;
  has_spare_gaussian_ = true;
  return u * mul;
}

}  // namespace cmp
