#ifndef CMP_COMMON_RANDOM_H_
#define CMP_COMMON_RANDOM_H_

#include <cstdint>

namespace cmp {

/// Small, fast, reproducible PRNG (xoshiro256**). All data generators in
/// this library draw from Rng so experiments are bit-reproducible across
/// platforms, which std::mt19937's distribution wrappers do not guarantee.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) { Seed(seed); }

  /// Re-seeds the generator via splitmix64 expansion of `seed`.
  void Seed(uint64_t seed);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    return lo + (hi - lo) * UniformDouble();
  }

  /// Uniform integer in [lo, hi] (inclusive).
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Standard normal via Box-Muller.
  double Gaussian();

  /// Normal with the given mean and standard deviation.
  double Gaussian(double mean, double stddev) {
    return mean + stddev * Gaussian();
  }

  /// Bernoulli draw with probability `p` of true.
  bool Bernoulli(double p) { return UniformDouble() < p; }

 private:
  uint64_t s_[4];
  bool has_spare_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

}  // namespace cmp

#endif  // CMP_COMMON_RANDOM_H_
