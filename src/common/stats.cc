#include "common/stats.h"

#include <algorithm>
#include <sstream>

namespace cmp {

double BuildStats::SimulatedSeconds(const DiskModel& model) const {
  double seconds = 0.0;
  seconds += static_cast<double>(bytes_read) / model.scan_bandwidth;
  seconds += static_cast<double>(bytes_written) / model.write_bandwidth;
  // Every record read implies visiting its fields once; bytes_read /
  // 8 approximates fields visited well enough for the cost model.
  seconds += static_cast<double>(bytes_read) / 8.0 * model.cpu_per_field;
  seconds += static_cast<double>(sort_comparisons) * model.cpu_per_sort_cmp;
  return seconds;
}

void BuildStats::Accumulate(const BuildStats& other) {
  dataset_scans += other.dataset_scans;
  records_read += other.records_read;
  bytes_read += other.bytes_read;
  bytes_written += other.bytes_written;
  buffered_records += other.buffered_records;
  sort_comparisons += other.sort_comparisons;
  peak_memory_bytes = std::max(peak_memory_bytes, other.peak_memory_bytes);
  tree_nodes = std::max(tree_nodes, other.tree_nodes);
  tree_depth = std::max(tree_depth, other.tree_depth);
  predictions_total += other.predictions_total;
  predictions_correct += other.predictions_correct;
  wall_seconds += other.wall_seconds;
}

std::string BuildStats::ToString() const {
  std::ostringstream os;
  os << "scans=" << dataset_scans << " records_read=" << records_read
     << " MB_read=" << static_cast<double>(bytes_read) / (1024.0 * 1024.0)
     << " MB_written="
     << static_cast<double>(bytes_written) / (1024.0 * 1024.0)
     << " buffered=" << buffered_records
     << " peak_mem_MB="
     << static_cast<double>(peak_memory_bytes) / (1024.0 * 1024.0)
     << " nodes=" << tree_nodes << " depth=" << tree_depth
     << " wall_s=" << wall_seconds;
  return os.str();
}

}  // namespace cmp
