#ifndef CMP_COMMON_STATS_H_
#define CMP_COMMON_STATS_H_

#include <cstdint>
#include <string>

namespace cmp {

/// Cost model for the simulated disk + CPU of the paper's testbed.
///
/// The paper's experiments (UltraSPARC 10, 128 MB RAM) are dominated by
/// the number of sequential passes over a disk-resident training set and
/// by per-record CPU work. We reproduce the *mechanism* rather than the
/// absolute 1999 numbers: builders count what they read/write/sort, and
/// this model converts those counters into simulated seconds so that the
/// figures' shapes (who wins, by what factor) can be regenerated on any
/// host.
struct DiskModel {
  /// Sequential scan bandwidth, bytes/second.
  double scan_bandwidth = 20.0 * 1024 * 1024;
  /// Random-ish write bandwidth for materialized structures (SPRINT's
  /// attribute lists), bytes/second.
  double write_bandwidth = 10.0 * 1024 * 1024;
  /// CPU cost charged per record-field visited, seconds.
  double cpu_per_field = 20e-9;
  /// CPU cost per comparison in an explicit sort, seconds.
  double cpu_per_sort_cmp = 25e-9;
};

/// Counters every tree builder fills while constructing a tree.
struct BuildStats {
  /// Number of complete passes over the training set (the paper's key
  /// metric: CMP-B grows >1 level per scan, CLOUDS needs an extra pass
  /// per level, ...).
  int64_t dataset_scans = 0;
  /// Records read across all scans (partial passes count fractionally).
  int64_t records_read = 0;
  /// Bytes read from the (simulated) disk.
  int64_t bytes_read = 0;
  /// Bytes written to the (simulated) disk (attribute lists, nid array
  /// swapping, ...).
  int64_t bytes_written = 0;
  /// Records set aside in alive-interval buffers (CMP) or alive-point
  /// rescans (CLOUDS).
  int64_t buffered_records = 0;
  /// Comparisons spent in explicit sorts (SPRINT presort, CMP buffer
  /// sorts).
  int64_t sort_comparisons = 0;
  /// Peak bytes of in-memory working state (histograms, AVC groups,
  /// attribute lists, buffers). Analytic estimate, used for Figure 19.
  int64_t peak_memory_bytes = 0;
  /// Nodes in the final tree / levels grown.
  int64_t tree_nodes = 0;
  int64_t tree_depth = 0;
  /// CMP-B only: how often predictSplit's X-axis choice matched the
  /// attribute actually chosen for the node's split (the paper reports
  /// ~80% on Function 2).
  int64_t predictions_total = 0;
  int64_t predictions_correct = 0;
  /// CMP only: number of alive intervals selected for the root split
  /// (Table 1 reports this per dataset/interval-count), or 0 when the
  /// root split was exact/categorical/linear.
  int64_t root_alive_intervals = 0;
  /// Wall-clock construction time measured on this host, seconds.
  double wall_seconds = 0.0;

  /// Simulated construction time under `model`, seconds.
  double SimulatedSeconds(const DiskModel& model) const;

  /// Merges counters from a sub-phase (max for peaks, sum otherwise).
  void Accumulate(const BuildStats& other);

  /// One-line human-readable rendering.
  std::string ToString() const;
};

/// Updates `peak` to at least `candidate`.
inline void UpdatePeak(int64_t& peak, int64_t candidate) {
  if (candidate > peak) peak = candidate;
}

}  // namespace cmp

#endif  // CMP_COMMON_STATS_H_
