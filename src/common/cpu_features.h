#ifndef CMP_COMMON_CPU_FEATURES_H_
#define CMP_COMMON_CPU_FEATURES_H_

#include <string>

namespace cmp {

/// Instruction-set tiers the vectorized kernels are built for. The
/// numeric order is the capability order: every tier can also run any
/// lower tier's kernels, so "best available" is a simple max.
enum class KernelIsa {
  kScalar = 0,
  kSse2 = 1,
  kAvx2 = 2,
};

/// Display name ("scalar", "sse2", "avx2").
const char* KernelIsaName(KernelIsa isa);

/// True when this host (CPU + OS state + how this binary was compiled)
/// can execute kernels of tier `isa`. kScalar is always supported; AVX2
/// additionally requires OS-enabled YMM state (OSXSAVE + XCR0).
bool KernelIsaSupported(KernelIsa isa);

/// The best supported tier, downgraded to kScalar when the
/// CMP_FORCE_SCALAR environment variable is set to anything but "0" or
/// empty. Detected once and cached.
KernelIsa DetectKernelIsa();

/// The tier the dispatching kernels currently select. Initialized to
/// DetectKernelIsa() on first use.
KernelIsa ActiveKernelIsa();

/// Overrides the active tier. Returns false (and changes nothing) when
/// `isa` is not supported on this host. Intended for startup flags and
/// tests; swapping tiers mid-build is safe for correctness (every tier
/// produces identical cells) but makes timings meaningless.
bool SetKernelIsa(KernelIsa isa);

/// Parses "auto" | "scalar" | "sse2" | "avx2". "auto" yields
/// DetectKernelIsa(). Returns false on any other string.
bool ParseKernelIsa(const std::string& name, KernelIsa* out);

/// ParseKernelIsa + SetKernelIsa in one step for CLI flags. On failure
/// returns false and fills `error` with a message naming the supported
/// tiers of this host.
bool SelectKernelIsaByName(const std::string& name, std::string* error);

}  // namespace cmp

#endif  // CMP_COMMON_CPU_FEATURES_H_
