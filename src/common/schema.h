#ifndef CMP_COMMON_SCHEMA_H_
#define CMP_COMMON_SCHEMA_H_

#include <string>
#include <vector>

#include "common/types.h"

namespace cmp {

/// Kind of a training-set attribute. Ordered (numeric) attributes support
/// range splits `a <= c`; categorical attributes support subset splits.
enum class AttrKind {
  kNumeric,
  kCategorical,
};

/// Description of one attribute (the class label is *not* an attribute).
struct AttrInfo {
  std::string name;
  AttrKind kind = AttrKind::kNumeric;
  /// For categorical attributes: number of distinct values (values are
  /// dense integers in [0, cardinality)). Ignored for numeric attributes.
  int32_t cardinality = 0;
};

/// Schema of a training set: the attribute descriptions plus the names of
/// the class labels. Class labels are dense integers in [0, num_classes).
class Schema {
 public:
  Schema() = default;
  Schema(std::vector<AttrInfo> attrs, std::vector<std::string> class_names);

  int32_t num_attrs() const { return static_cast<int32_t>(attrs_.size()); }
  int32_t num_classes() const {
    return static_cast<int32_t>(class_names_.size());
  }

  const AttrInfo& attr(AttrId a) const { return attrs_[a]; }
  const std::vector<AttrInfo>& attrs() const { return attrs_; }
  const std::string& class_name(ClassId c) const { return class_names_[c]; }
  const std::vector<std::string>& class_names() const { return class_names_; }

  bool is_numeric(AttrId a) const {
    return attrs_[a].kind == AttrKind::kNumeric;
  }

  /// Returns the ids of all numeric attributes, in schema order.
  std::vector<AttrId> NumericAttrs() const;
  /// Returns the ids of all categorical attributes, in schema order.
  std::vector<AttrId> CategoricalAttrs() const;

  /// Looks up an attribute id by name; returns kInvalidAttr if absent.
  AttrId FindAttr(const std::string& name) const;

  /// Approximate on-disk size of one record in bytes (8 bytes per numeric
  /// attribute, 4 per categorical, 4 for the label). Used by the I/O cost
  /// model.
  int64_t RecordBytes() const;

  bool operator==(const Schema& other) const;

 private:
  std::vector<AttrInfo> attrs_;
  std::vector<std::string> class_names_;
};

}  // namespace cmp

#endif  // CMP_COMMON_SCHEMA_H_
