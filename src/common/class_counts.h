#ifndef CMP_COMMON_CLASS_COUNTS_H_
#define CMP_COMMON_CLASS_COUNTS_H_

#include <cstdint>
#include <vector>

#include "common/dataset.h"

namespace cmp {

/// Helpers over per-class record-count vectors (one entry per class).
/// Every builder in the library carries these vectors through its split
/// search; the operations live here so the algorithms share one
/// definition instead of a private copy each.

/// The class with the highest count; ties go to the lowest class id.
inline ClassId Majority(const std::vector<int64_t>& counts) {
  ClassId best = 0;
  for (ClassId c = 1; c < static_cast<ClassId>(counts.size()); ++c) {
    if (counts[c] > counts[best]) best = c;
  }
  return best;
}

/// True when at most one class has records.
inline bool IsPure(const std::vector<int64_t>& counts) {
  int nonzero = 0;
  for (int64_t c : counts) {
    if (c > 0) ++nonzero;
  }
  return nonzero <= 1;
}

/// Total records across all classes.
inline int64_t CountSum(const std::vector<int64_t>& counts) {
  int64_t n = 0;
  for (int64_t c : counts) n += c;
  return n;
}

}  // namespace cmp

#endif  // CMP_COMMON_CLASS_COUNTS_H_
