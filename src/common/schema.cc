#include "common/schema.h"

#include <utility>

namespace cmp {

Schema::Schema(std::vector<AttrInfo> attrs, std::vector<std::string> class_names)
    : attrs_(std::move(attrs)), class_names_(std::move(class_names)) {}

std::vector<AttrId> Schema::NumericAttrs() const {
  std::vector<AttrId> out;
  for (AttrId a = 0; a < num_attrs(); ++a) {
    if (attrs_[a].kind == AttrKind::kNumeric) out.push_back(a);
  }
  return out;
}

std::vector<AttrId> Schema::CategoricalAttrs() const {
  std::vector<AttrId> out;
  for (AttrId a = 0; a < num_attrs(); ++a) {
    if (attrs_[a].kind == AttrKind::kCategorical) out.push_back(a);
  }
  return out;
}

AttrId Schema::FindAttr(const std::string& name) const {
  for (AttrId a = 0; a < num_attrs(); ++a) {
    if (attrs_[a].name == name) return a;
  }
  return kInvalidAttr;
}

int64_t Schema::RecordBytes() const {
  int64_t bytes = 4;  // class label
  for (const AttrInfo& info : attrs_) {
    bytes += info.kind == AttrKind::kNumeric ? 8 : 4;
  }
  return bytes;
}

bool Schema::operator==(const Schema& other) const {
  if (class_names_ != other.class_names_) return false;
  if (attrs_.size() != other.attrs_.size()) return false;
  for (size_t i = 0; i < attrs_.size(); ++i) {
    if (attrs_[i].name != other.attrs_[i].name ||
        attrs_[i].kind != other.attrs_[i].kind ||
        attrs_[i].cardinality != other.attrs_[i].cardinality) {
      return false;
    }
  }
  return true;
}

}  // namespace cmp
