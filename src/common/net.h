#ifndef CMP_COMMON_NET_H_
#define CMP_COMMON_NET_H_

#include <cstddef>
#include <string>

namespace cmp {

/// Shared POSIX socket helpers for the serving daemon (serve/server.cc),
/// the cmpserve front end, and the distributed-training coordinator.
/// All of them speak over blocking stream sockets and need the same
/// four things: ride out EINTR, survive partial reads/writes, never die
/// on SIGPIPE, and hand a listening socket back with its resolved port.

/// Writes the whole buffer, riding out EINTR and partial sends.
/// MSG_NOSIGNAL turns a peer hangup into an error return instead of a
/// process-killing SIGPIPE.
bool SendAll(int fd, const void* data, size_t size);
bool SendAll(int fd, const std::string& data);

/// SendAll of `line` plus a trailing newline.
bool SendLine(int fd, const std::string& line);

/// Reads exactly `size` bytes, riding out EINTR. False on EOF or error
/// before the buffer fills (the caller cannot tell how much arrived —
/// a short frame is a dead peer either way).
bool RecvAll(int fd, void* data, size_t size);

/// Buffered newline-framed reader over a blocking socket.
class LineReader {
 public:
  explicit LineReader(int fd) : fd_(fd) {}

  /// False on EOF or error with no complete line left. Strips one
  /// trailing '\r' so CRLF clients work.
  bool ReadLine(std::string* out);

 private:
  int fd_;
  std::string buf_;
};

/// Binds and listens on host:port (SO_REUSEADDR; port 0 binds an
/// ephemeral port). On success returns the fd and stores the resolved
/// port in *bound_port. On failure returns -1 with *error set.
int ListenTcp(const std::string& host, int port, int* bound_port,
              std::string* error);

/// Binds and listens on a UNIX-domain socket at `path`, unlinking any
/// stale socket first. Returns the fd, or -1 with *error set.
int ListenUnix(const std::string& path, std::string* error);

/// Writes "port\n" to `path` (truncating). Written after listen() so a
/// reader of the file can connect immediately — the race-free startup
/// handshake for scripts and e2e tests.
bool WritePortFile(const std::string& path, int port);

}  // namespace cmp

#endif  // CMP_COMMON_NET_H_
