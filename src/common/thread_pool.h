#ifndef CMP_COMMON_THREAD_POOL_H_
#define CMP_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace cmp {

/// A fixed-size pool of worker threads with a shared task queue.
///
/// This is the library's only threading primitive: batch inference
/// partitions row blocks across it, and future subsystems (parallel
/// builders, concurrent serving) are expected to reuse it rather than
/// spawn ad-hoc threads. Tasks are arbitrary `void()` callables; the
/// pool never touches Dataset or tree state itself, so any
/// synchronization of shared results is the caller's job (ParallelFor
/// hands each worker a disjoint index range precisely so callers can
/// write to pre-sized output arrays without locks).
///
/// With `num_threads <= 1` the pool starts no workers and runs every
/// task inline on the calling thread, which keeps single-threaded
/// callers allocation- and lock-free and makes thread-count sweeps in
/// benchmarks uniform.
class ThreadPool {
 public:
  /// Starts `num_threads` workers; 0 means std::thread::hardware_concurrency.
  explicit ThreadPool(int num_threads);

  /// Drains outstanding tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads (0 for an inline pool).
  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues one task. Tasks may not themselves call Submit/ParallelFor
  /// on the same pool (no work-stealing; a waiting task would deadlock).
  void Submit(std::function<void()> task);

  /// Blocks until every task submitted so far has finished.
  void Wait();

  /// Splits `[0, n)` into contiguous chunks of at most `grain` elements,
  /// runs `fn(begin, end)` for each chunk across the pool, and blocks
  /// until all chunks are done. `grain <= 0` picks one chunk per worker.
  void ParallelFor(int64_t n, int64_t grain,
                   const std::function<void(int64_t, int64_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable work_ready_;
  std::condition_variable all_done_;
  int64_t pending_ = 0;  // queued + currently executing tasks
  bool stop_ = false;
};

}  // namespace cmp

#endif  // CMP_COMMON_THREAD_POOL_H_
