#ifndef CMP_COMMON_THREAD_POOL_H_
#define CMP_COMMON_THREAD_POOL_H_

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace cmp {

/// A fixed-size pool of worker threads with a shared task queue.
///
/// This is the library's only threading primitive: batch inference
/// partitions row blocks across it, parallel tree construction fans
/// per-attribute and per-shard work over it, and future subsystems
/// (concurrent serving) are expected to reuse it rather than spawn
/// ad-hoc threads. Tasks are arbitrary `void()` callables; the pool
/// never touches Dataset or tree state itself, so any synchronization
/// of shared results is the caller's job (ParallelFor hands each worker
/// a disjoint index range precisely so callers can write to pre-sized
/// output arrays without locks).
///
/// ParallelFor is a *task group*: the calling thread helps drain the
/// queue while it waits, so tasks may themselves call ParallelFor (or
/// Submit) on the same pool without deadlocking, and several threads
/// may run independent ParallelFor calls on one shared pool
/// concurrently (each blocks only on its own group). This is what lets
/// training and inference share a single process-wide pool instead of
/// oversubscribing the machine with one pool per call site.
///
/// Exceptions thrown by tasks are captured: ParallelFor rethrows the
/// first exception of its own group once every chunk has finished;
/// Wait() rethrows the first exception of plain Submit()ed tasks.
///
/// With `num_threads <= 1` the pool starts no workers and runs every
/// task inline on the calling thread, which keeps single-threaded
/// callers allocation- and lock-free and makes thread-count sweeps in
/// benchmarks uniform.
class ThreadPool {
 public:
  /// Starts `num_threads` workers; 0 means std::thread::hardware_concurrency.
  explicit ThreadPool(int num_threads);

  /// Drains outstanding tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads (0 for an inline pool).
  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Workers available to split a ParallelFor across (1 for an inline
  /// pool). Deterministic sharding keys off this.
  int parallelism() const { return std::max(1, num_threads()); }

  /// Enqueues one task. Tasks may submit further tasks.
  void Submit(std::function<void()> task);

  /// Blocks until every task submitted so far has finished (including
  /// tasks submitted by tasks), then rethrows the first exception any of
  /// them raised. Do not call from inside a task. For waiting on a
  /// bounded batch from anywhere (including inside tasks), use
  /// ParallelFor instead.
  void Wait();

  /// Splits `[0, n)` into contiguous chunks of at most `grain` elements,
  /// runs `fn(begin, end)` for each chunk across the pool, and blocks
  /// until all chunks are done, helping to run queued tasks in the
  /// meantime. `grain <= 0` picks one chunk per worker. Safe to call
  /// from inside pool tasks and from several threads at once.
  void ParallelFor(int64_t n, int64_t grain,
                   const std::function<void(int64_t, int64_t)>& fn);

 private:
  // Completion state of one ParallelFor call; guarded by mu_.
  struct Group {
    int64_t remaining = 0;
    std::exception_ptr error;
  };

  void WorkerLoop();
  // Runs one dequeued task, capturing stray exceptions into
  // first_error_ and maintaining pending_ / all_done_.
  void RunTask(std::function<void()>& task);

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mu_;
  // Signaled on enqueue, group completion and shutdown. Workers and
  // ParallelFor helpers share it (helpers additionally watch their
  // group's `remaining`).
  std::condition_variable work_ready_;
  std::condition_variable all_done_;
  int64_t pending_ = 0;  // queued + currently executing tasks
  std::exception_ptr first_error_;  // first throw from a Submit()ed task
  bool stop_ = false;
};

}  // namespace cmp

#endif  // CMP_COMMON_THREAD_POOL_H_
