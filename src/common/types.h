#ifndef CMP_COMMON_TYPES_H_
#define CMP_COMMON_TYPES_H_

#include <cstdint>

namespace cmp {

/// Index of a record within a dataset.
using RecordId = int64_t;

/// Index of an attribute within a schema (excludes the class label).
using AttrId = int32_t;

/// Zero-based class label identifier.
using ClassId = int32_t;

/// Index of a node within a decision tree's node array.
using NodeId = int32_t;

/// Sentinel for "no node" / "no attribute".
inline constexpr NodeId kInvalidNode = -1;
inline constexpr AttrId kInvalidAttr = -1;
inline constexpr ClassId kInvalidClass = -1;

}  // namespace cmp

#endif  // CMP_COMMON_TYPES_H_
