#include "common/cpu_features.h"

#include <atomic>
#include <cstdlib>

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#define CMP_X86 1
#else
#define CMP_X86 0
#endif

namespace cmp {

namespace {

#if CMP_X86

// XCR0 via xgetbv: bits 1 (SSE/XMM) and 2 (AVX/YMM) must both be
// OS-enabled before any 256-bit instruction is legal, regardless of
// what CPUID advertises.
uint64_t ReadXcr0() {
  uint32_t eax = 0;
  uint32_t edx = 0;
  __asm__ volatile("xgetbv" : "=a"(eax), "=d"(edx) : "c"(0));
  return (static_cast<uint64_t>(edx) << 32) | eax;
}

bool CpuHasSse2() {
#if defined(__x86_64__)
  return true;  // SSE2 is architectural baseline for x86-64
#else
  unsigned eax = 0;
  unsigned ebx = 0;
  unsigned ecx = 0;
  unsigned edx = 0;
  if (__get_cpuid(1, &eax, &ebx, &ecx, &edx) == 0) return false;
  return (edx & (1u << 26)) != 0;
#endif
}

bool CpuHasAvx2() {
  unsigned eax = 0;
  unsigned ebx = 0;
  unsigned ecx = 0;
  unsigned edx = 0;
  if (__get_cpuid(1, &eax, &ebx, &ecx, &edx) == 0) return false;
  const bool osxsave = (ecx & (1u << 27)) != 0;
  const bool avx = (ecx & (1u << 28)) != 0;
  if (!osxsave || !avx) return false;
  if ((ReadXcr0() & 0x6) != 0x6) return false;
  if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx) == 0) return false;
  return (ebx & (1u << 5)) != 0;
}

#endif  // CMP_X86

bool ForceScalarEnv() {
  const char* v = std::getenv("CMP_FORCE_SCALAR");
  return v != nullptr && v[0] != '\0' &&
         !(v[0] == '0' && v[1] == '\0');
}

// The active tier, shared by every dispatching kernel. -1 = not yet
// initialized from DetectKernelIsa().
std::atomic<int> g_active_isa{-1};

}  // namespace

const char* KernelIsaName(KernelIsa isa) {
  switch (isa) {
    case KernelIsa::kScalar:
      return "scalar";
    case KernelIsa::kSse2:
      return "sse2";
    case KernelIsa::kAvx2:
      return "avx2";
  }
  return "scalar";
}

bool KernelIsaSupported(KernelIsa isa) {
  switch (isa) {
    case KernelIsa::kScalar:
      return true;
    case KernelIsa::kSse2:
#if CMP_X86
    {
      static const bool supported = CpuHasSse2();
      return supported;
    }
#else
      return false;
#endif
    case KernelIsa::kAvx2:
#if CMP_X86
    {
      static const bool supported = CpuHasAvx2();
      return supported;
    }
#else
      return false;
#endif
  }
  return false;
}

KernelIsa DetectKernelIsa() {
  static const KernelIsa detected = [] {
    if (ForceScalarEnv()) return KernelIsa::kScalar;
    if (KernelIsaSupported(KernelIsa::kAvx2)) return KernelIsa::kAvx2;
    if (KernelIsaSupported(KernelIsa::kSse2)) return KernelIsa::kSse2;
    return KernelIsa::kScalar;
  }();
  return detected;
}

KernelIsa ActiveKernelIsa() {
  int isa = g_active_isa.load(std::memory_order_relaxed);
  if (isa < 0) {
    isa = static_cast<int>(DetectKernelIsa());
    // Another thread may race the initialization; both write the same
    // detected value, so a plain store is fine.
    g_active_isa.store(isa, std::memory_order_relaxed);
  }
  return static_cast<KernelIsa>(isa);
}

bool SetKernelIsa(KernelIsa isa) {
  if (!KernelIsaSupported(isa)) return false;
  g_active_isa.store(static_cast<int>(isa), std::memory_order_relaxed);
  return true;
}

bool ParseKernelIsa(const std::string& name, KernelIsa* out) {
  if (name == "auto") {
    *out = DetectKernelIsa();
    return true;
  }
  if (name == "scalar") {
    *out = KernelIsa::kScalar;
    return true;
  }
  if (name == "sse2") {
    *out = KernelIsa::kSse2;
    return true;
  }
  if (name == "avx2") {
    *out = KernelIsa::kAvx2;
    return true;
  }
  return false;
}

bool SelectKernelIsaByName(const std::string& name, std::string* error) {
  KernelIsa isa;
  if (!ParseKernelIsa(name, &isa)) {
    if (error != nullptr) {
      *error = "unknown kernel tier '" + name +
               "' (want auto|scalar|sse2|avx2)";
    }
    return false;
  }
  if (!SetKernelIsa(isa)) {
    if (error != nullptr) {
      std::string have;
      for (KernelIsa k :
           {KernelIsa::kScalar, KernelIsa::kSse2, KernelIsa::kAvx2}) {
        if (!KernelIsaSupported(k)) continue;
        if (!have.empty()) have += '|';
        have += KernelIsaName(k);
      }
      *error = std::string("kernel tier '") + KernelIsaName(isa) +
               "' is not supported on this host (have: " + have + ")";
    }
    return false;
  }
  return true;
}

}  // namespace cmp
