#ifndef CMP_COMMON_DATASET_H_
#define CMP_COMMON_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/schema.h"
#include "common/types.h"

namespace cmp {

/// Columnar, read-only-after-construction training set.
///
/// Numeric attributes are stored as `double` columns, categorical
/// attributes as dense `int32_t` columns, and class labels as a dense
/// `ClassId` column. All tree builders in this library treat a Dataset as
/// immutable once built (CMP in particular never sorts, copies or modifies
/// the training set); scans are charged to a ScanCounter by the builders.
class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(Schema schema);

  // Movable but not copyable: training sets can be large, and accidental
  // copies are the kind of cost this library exists to avoid.
  Dataset(const Dataset&) = delete;
  Dataset& operator=(const Dataset&) = delete;
  Dataset(Dataset&&) = default;
  Dataset& operator=(Dataset&&) = default;

  const Schema& schema() const { return schema_; }
  int64_t num_records() const { return static_cast<int64_t>(labels_.size()); }
  int32_t num_attrs() const { return schema_.num_attrs(); }
  int32_t num_classes() const { return schema_.num_classes(); }

  /// Value of numeric attribute `a` for record `r`. Must only be called
  /// for numeric attributes.
  double numeric(AttrId a, RecordId r) const { return numeric_cols_[a][r]; }
  /// Value of categorical attribute `a` for record `r`. Must only be
  /// called for categorical attributes.
  int32_t categorical(AttrId a, RecordId r) const { return cat_cols_[a][r]; }
  /// Class label of record `r`.
  ClassId label(RecordId r) const { return labels_[r]; }

  /// Whole-column access (for sorting-based algorithms such as SPRINT).
  const std::vector<double>& numeric_column(AttrId a) const {
    return numeric_cols_[a];
  }
  const std::vector<int32_t>& categorical_column(AttrId a) const {
    return cat_cols_[a];
  }
  const std::vector<ClassId>& labels() const { return labels_; }

  /// Appends one record. `numeric_values` must supply one value per
  /// numeric attribute in schema order; likewise `cat_values` for
  /// categorical attributes. Returns the new record's id.
  RecordId Append(const std::vector<double>& numeric_values,
                  const std::vector<int32_t>& cat_values, ClassId label);

  /// Pre-allocates column storage for `n` records.
  void Reserve(int64_t n);

  /// Per-class record counts over the whole dataset.
  std::vector<int64_t> ClassCounts() const;

  /// Creates a dataset holding the records whose ids are in `rids`, in
  /// that order (used for train/test splits in tests and examples).
  Dataset Subset(const std::vector<RecordId>& rids) const;

  /// Total payload bytes if this dataset were written to disk.
  int64_t TotalBytes() const {
    return num_records() * schema_.RecordBytes();
  }

 private:
  Schema schema_;
  // Indexed by AttrId; only the matching-kind vector is populated per
  // attribute, the other stays empty.
  std::vector<std::vector<double>> numeric_cols_;
  std::vector<std::vector<int32_t>> cat_cols_;
  std::vector<ClassId> labels_;
};

}  // namespace cmp

#endif  // CMP_COMMON_DATASET_H_
