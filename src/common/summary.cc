#include "common/summary.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

namespace cmp {

DatasetSummary Summarize(const Dataset& ds, int64_t distinct_cap) {
  DatasetSummary out;
  out.records = ds.num_records();
  out.class_counts = ds.ClassCounts();
  const Schema& schema = ds.schema();
  out.attrs.resize(schema.num_attrs());
  for (AttrId a = 0; a < schema.num_attrs(); ++a) {
    AttrSummary& s = out.attrs[a];
    s.name = schema.attr(a).name;
    s.kind = schema.attr(a).kind;
    if (schema.is_numeric(a)) {
      const auto& col = ds.numeric_column(a);
      if (col.empty()) continue;
      double sum = 0.0;
      double sum_sq = 0.0;
      s.min = col[0];
      s.max = col[0];
      for (double v : col) {
        s.min = std::min(s.min, v);
        s.max = std::max(s.max, v);
        sum += v;
        sum_sq += v * v;
      }
      const double n = static_cast<double>(col.size());
      s.mean = sum / n;
      const double var = std::max(0.0, sum_sq / n - s.mean * s.mean);
      s.stddev = std::sqrt(var);
      // Distinct values via a sorted copy, capped for huge columns.
      std::vector<double> sorted = col;
      std::sort(sorted.begin(), sorted.end());
      int64_t distinct = 1;
      for (size_t i = 1; i < sorted.size() && distinct < distinct_cap; ++i) {
        if (sorted[i] != sorted[i - 1]) ++distinct;
      }
      s.distinct = distinct;
    } else {
      s.cardinality = schema.attr(a).cardinality;
      std::vector<uint8_t> seen(s.cardinality, 0);
      for (int32_t v : ds.categorical_column(a)) {
        if (v >= 0 && v < s.cardinality) seen[v] = 1;
      }
      s.distinct = 0;
      for (uint8_t b : seen) s.distinct += b;
    }
  }
  return out;
}

std::string DatasetSummary::ToString(const Schema& schema) const {
  std::ostringstream os;
  os << records << " records, " << schema.num_attrs() << " attributes, "
     << schema.num_classes() << " classes\n";
  os << "class distribution:";
  for (ClassId c = 0; c < schema.num_classes(); ++c) {
    os << ' ' << schema.class_name(c) << '=' << class_counts[c];
  }
  os << '\n';
  os << std::left << std::setw(14) << "attribute" << std::right
     << std::setw(6) << "kind" << std::setw(14) << "min" << std::setw(14)
     << "max" << std::setw(14) << "mean" << std::setw(12) << "stddev"
     << std::setw(10) << "distinct" << '\n';
  os << std::fixed << std::setprecision(2);
  for (const AttrSummary& s : attrs) {
    os << std::left << std::setw(14) << s.name << std::right;
    if (s.kind == AttrKind::kNumeric) {
      os << std::setw(6) << "num" << std::setw(14) << s.min << std::setw(14)
         << s.max << std::setw(14) << s.mean << std::setw(12) << s.stddev
         << std::setw(10) << s.distinct;
    } else {
      os << std::setw(6) << "cat" << std::setw(14) << "-" << std::setw(14)
         << "-" << std::setw(14) << "-" << std::setw(12) << "-"
         << std::setw(10) << s.distinct;
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace cmp
