#include "common/thread_pool.h"

#include <algorithm>
#include <utility>

namespace cmp {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads == 0) {
    num_threads = static_cast<int>(std::thread::hardware_concurrency());
  }
  if (num_threads <= 1) return;  // inline pool: tasks run on the caller
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  if (workers_.empty()) {
    task();
    return;
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push(std::move(task));
    ++pending_;
  }
  work_ready_.notify_one();
}

void ThreadPool::Wait() {
  if (workers_.empty()) return;
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return pending_ == 0; });
}

void ThreadPool::ParallelFor(int64_t n, int64_t grain,
                             const std::function<void(int64_t, int64_t)>& fn) {
  if (n <= 0) return;
  if (workers_.empty()) {
    fn(0, n);
    return;
  }
  if (grain <= 0) {
    grain = (n + static_cast<int64_t>(workers_.size()) - 1) /
            static_cast<int64_t>(workers_.size());
    grain = std::max<int64_t>(grain, 1);
  }
  for (int64_t begin = 0; begin < n; begin += grain) {
    const int64_t end = std::min(begin + grain, n);
    Submit([&fn, begin, end] { fn(begin, end); });
  }
  Wait();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_ready_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and queue drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (--pending_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace cmp
