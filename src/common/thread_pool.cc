#include "common/thread_pool.h"

#include <algorithm>
#include <memory>
#include <utility>

namespace cmp {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads == 0) {
    num_threads = static_cast<int>(std::thread::hardware_concurrency());
  }
  if (num_threads <= 1) return;  // inline pool: tasks run on the caller
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  if (workers_.empty()) {
    try {
      task();
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    return;
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push(std::move(task));
    ++pending_;
  }
  work_ready_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  if (!workers_.empty()) {
    all_done_.wait(lock, [this] { return pending_ == 0; });
  }
  if (first_error_) {
    std::exception_ptr err = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(err);
  }
}

void ThreadPool::ParallelFor(int64_t n, int64_t grain,
                             const std::function<void(int64_t, int64_t)>& fn) {
  if (n <= 0) return;
  if (workers_.empty()) {
    fn(0, n);
    return;
  }
  if (grain <= 0) {
    grain = (n + static_cast<int64_t>(workers_.size()) - 1) /
            static_cast<int64_t>(workers_.size());
    grain = std::max<int64_t>(grain, 1);
  }
  auto group = std::make_shared<Group>();
  {
    std::unique_lock<std::mutex> lock(mu_);
    group->remaining = (n + grain - 1) / grain;
    for (int64_t begin = 0; begin < n; begin += grain) {
      const int64_t end = std::min(begin + grain, n);
      queue_.push([this, group, &fn, begin, end] {
        std::exception_ptr err;
        try {
          fn(begin, end);
        } catch (...) {
          err = std::current_exception();
        }
        std::lock_guard<std::mutex> guard(mu_);
        if (err && !group->error) group->error = err;
        // Group completion must wake helpers whose predicate watches
        // `remaining`, which only work_ready_ covers.
        if (--group->remaining == 0) work_ready_.notify_all();
      });
      ++pending_;
    }
  }
  work_ready_.notify_all();

  // Help drain the queue until this group's chunks have all finished.
  // Running other callers' (or nested groups') tasks here is what makes
  // ParallelFor safe to call from inside tasks: a waiting thread always
  // makes progress instead of holding a worker slot idle.
  std::unique_lock<std::mutex> lock(mu_);
  while (group->remaining != 0) {
    if (!queue_.empty()) {
      std::function<void()> task = std::move(queue_.front());
      queue_.pop();
      lock.unlock();
      RunTask(task);
      lock.lock();
      continue;
    }
    work_ready_.wait(lock, [this, &group] {
      return group->remaining == 0 || !queue_.empty();
    });
  }
  if (group->error) {
    std::exception_ptr err = group->error;
    lock.unlock();
    std::rethrow_exception(err);
  }
}

void ThreadPool::RunTask(std::function<void()>& task) {
  try {
    task();
  } catch (...) {
    // Group tasks catch internally, so anything landing here came from a
    // plain Submit(); surface it at the next Wait().
    std::lock_guard<std::mutex> lock(mu_);
    if (!first_error_) first_error_ = std::current_exception();
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (--pending_ == 0) all_done_.notify_all();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_ready_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and queue drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    RunTask(task);
  }
}

}  // namespace cmp
