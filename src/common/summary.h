#ifndef CMP_COMMON_SUMMARY_H_
#define CMP_COMMON_SUMMARY_H_

#include <string>
#include <vector>

#include "common/dataset.h"

namespace cmp {

/// Per-attribute descriptive statistics of a dataset.
struct AttrSummary {
  std::string name;
  AttrKind kind = AttrKind::kNumeric;
  // Numeric attributes.
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;
  int64_t distinct = 0;  // exact for categorical, capped estimate for numeric
  // Categorical attributes.
  int32_t cardinality = 0;
};

/// Whole-dataset summary: record/class counts plus per-attribute stats.
struct DatasetSummary {
  int64_t records = 0;
  std::vector<int64_t> class_counts;
  std::vector<AttrSummary> attrs;

  /// Tabular rendering.
  std::string ToString(const Schema& schema) const;
};

/// Computes the summary in one pass per column. `distinct_cap` bounds the
/// distinct-value count for numeric attributes (counting stops there).
DatasetSummary Summarize(const Dataset& ds, int64_t distinct_cap = 1000000);

}  // namespace cmp

#endif  // CMP_COMMON_SUMMARY_H_
