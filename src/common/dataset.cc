#include "common/dataset.h"

#include <cassert>
#include <utility>

namespace cmp {

Dataset::Dataset(Schema schema) : schema_(std::move(schema)) {
  numeric_cols_.resize(schema_.num_attrs());
  cat_cols_.resize(schema_.num_attrs());
}

RecordId Dataset::Append(const std::vector<double>& numeric_values,
                         const std::vector<int32_t>& cat_values,
                         ClassId label) {
  size_t ni = 0;
  size_t ci = 0;
  for (AttrId a = 0; a < schema_.num_attrs(); ++a) {
    if (schema_.is_numeric(a)) {
      assert(ni < numeric_values.size());
      numeric_cols_[a].push_back(numeric_values[ni++]);
    } else {
      assert(ci < cat_values.size());
      cat_cols_[a].push_back(cat_values[ci++]);
    }
  }
  assert(label >= 0 && label < schema_.num_classes());
  labels_.push_back(label);
  return static_cast<RecordId>(labels_.size()) - 1;
}

void Dataset::Reserve(int64_t n) {
  for (AttrId a = 0; a < schema_.num_attrs(); ++a) {
    if (schema_.is_numeric(a)) {
      numeric_cols_[a].reserve(n);
    } else {
      cat_cols_[a].reserve(n);
    }
  }
  labels_.reserve(n);
}

std::vector<int64_t> Dataset::ClassCounts() const {
  std::vector<int64_t> counts(schema_.num_classes(), 0);
  for (ClassId c : labels_) counts[c]++;
  return counts;
}

Dataset Dataset::Subset(const std::vector<RecordId>& rids) const {
  Dataset out(schema_);
  out.Reserve(static_cast<int64_t>(rids.size()));
  for (AttrId a = 0; a < schema_.num_attrs(); ++a) {
    if (schema_.is_numeric(a)) {
      for (RecordId r : rids) out.numeric_cols_[a].push_back(numeric_cols_[a][r]);
    } else {
      for (RecordId r : rids) out.cat_cols_[a].push_back(cat_cols_[a][r]);
    }
  }
  for (RecordId r : rids) out.labels_.push_back(labels_[r]);
  return out;
}

}  // namespace cmp
