#include "rainforest/rainforest.h"

#include <algorithm>
#include <limits>
#include <map>
#include <utility>
#include <vector>

#include "common/class_counts.h"
#include "common/timer.h"
#include "exact/exact.h"
#include "gini/categorical.h"
#include "gini/gini.h"
#include "hist/histogram1d.h"
#include "io/scan.h"
#include "pruning/mdl.h"
#include "tree/observer.h"

namespace cmp {

namespace {

// AVC-set of one attribute at one node: distinct value -> class counts.
// std::map keeps values ordered so the numeric split scan is a single
// in-order walk, matching how AVC-sets are consumed.
using AvcSet = std::map<double, std::vector<int64_t>>;

// Per-active-node construction state.
struct RfNode {
  NodeId node = kInvalidNode;
  int depth = 0;
  int64_t records = 0;
  std::vector<AvcSet> avc;  // one per attribute

  int64_t Entries() const {
    int64_t entries = 0;
    for (const AvcSet& s : avc) entries += static_cast<int64_t>(s.size());
    return entries;
  }
};

// Exact best split from a node's AVC-group.
ExactSplit BestSplitFromAvc(const RfNode& node, const Schema& schema,
                            const std::vector<int64_t>& totals,
                            std::vector<int64_t>* best_left_counts) {
  ExactSplit best;
  best.gini = std::numeric_limits<double>::infinity();
  const int nc = static_cast<int>(totals.size());
  int64_t n = 0;
  for (int64_t t : totals) n += t;
  for (AttrId a = 0; a < schema.num_attrs(); ++a) {
    const AvcSet& avc = node.avc[a];
    if (schema.is_numeric(a)) {
      std::vector<int64_t> below(nc, 0);
      int64_t below_n = 0;
      for (const auto& [value, counts] : avc) {
        for (int c = 0; c < nc; ++c) {
          below[c] += counts[c];
          below_n += counts[c];
        }
        if (below_n == n) break;  // last distinct value: no split there
        const double g = BoundaryGini(below, totals);
        if (g < best.gini) {
          best.gini = g;
          best.split = Split::Numeric(a, value);
          best.valid = true;
          *best_left_counts = below;
        }
      }
    } else {
      const int card = schema.attr(a).cardinality;
      Histogram1D hist(card, nc);
      for (const auto& [value, counts] : avc) {
        for (int c = 0; c < nc; ++c) {
          hist.Add(static_cast<int>(value), c, counts[c]);
        }
      }
      const CategoricalSplit cs = BestCategoricalSplit(hist);
      if (cs.valid && cs.gini < best.gini) {
        best.gini = cs.gini;
        best.split = Split::Categorical(a, cs.left_subset);
        best.valid = true;
        best_left_counts->assign(nc, 0);
        for (int v = 0; v < card; ++v) {
          if (cs.left_subset[v] != 0) {
            for (ClassId c = 0; c < nc; ++c) {
              (*best_left_counts)[c] += hist.count(v, c);
            }
          }
        }
      }
    }
  }
  return best;
}

}  // namespace

BuildResult RainForestBuilder::Build(const Dataset& train) {
  BuildResult result;
  ScanTracker tracker(&result.stats);
  Timer timer;

  const Schema& schema = train.schema();
  const int nc = schema.num_classes();
  const int64_t n = train.num_records();
  result.tree = DecisionTree(schema);

  TreeNode root;
  root.depth = 0;
  root.class_counts = train.ClassCounts();
  root.leaf_class = Majority(root.class_counts);
  const NodeId root_id = result.tree.AddNode(std::move(root));
  TrainObserver* const observer = options_.base.observer;
  if (observer != nullptr) observer->OnBuildStart(name(), n);
  if (n == 0) {
    result.stats.wall_seconds = timer.Seconds();
    if (observer != nullptr) observer->OnBuildEnd(result.stats);
    return result;
  }

  // RF-Hybrid's in-memory switch: a partition whose records fit in the
  // AVC buffer is finished without further scans. Conservatively, a
  // partition of m records needs at most m entries per attribute.
  const int64_t rf_threshold = std::max(
      options_.base.in_memory_threshold,
      options_.avc_buffer_entries / std::max(1, schema.num_attrs()));
  // The fixed buffer is allocated up front: this is RainForest's memory
  // footprint (2.5M entries * 4-byte counters * classes ~= 20 MB for two
  // classes, Figure 19).
  tracker.NotePeakMemory(options_.avc_buffer_entries * 4 * nc);

  std::vector<NodeId> nid(n, root_id);

  struct CollectNode {
    NodeId node;
    std::vector<RecordId> rids;
  };
  std::vector<RfNode> active;
  std::vector<CollectNode> collect;
  if (n <= rf_threshold) {
    collect.push_back({root_id, {}});
  } else {
    RfNode rn;
    rn.node = root_id;
    rn.depth = 0;
    rn.records = n;
    rn.avc.resize(schema.num_attrs());
    active.push_back(std::move(rn));
  }

  int pass_index = 0;
  while (!active.empty() || !collect.empty()) {
    PassObservation po;
    po.pass = pass_index++;
    po.records_scanned = n;
    po.frontier_fresh = static_cast<int64_t>(active.size());
    po.frontier_collect = static_cast<int64_t>(collect.size());
    const int64_t bytes_before = result.stats.bytes_read;
    Timer pass_timer;

    // Partition active nodes into scan batches whose AVC-groups fit the
    // buffer together (entry upper bound: records per attribute).
    std::vector<std::vector<size_t>> batches;
    {
      std::vector<size_t> batch;
      int64_t batch_entries = 0;
      for (size_t i = 0; i < active.size(); ++i) {
        const int64_t entries =
            std::min<int64_t>(active[i].records, n) * schema.num_attrs();
        if (!batch.empty() &&
            batch_entries + entries > options_.avc_buffer_entries) {
          batches.push_back(std::move(batch));
          batch.clear();
          batch_entries = 0;
        }
        batch.push_back(i);
        batch_entries += entries;
      }
      if (!batch.empty()) batches.push_back(std::move(batch));
    }
    if (batches.empty()) batches.push_back({});  // collect-only scan

    std::vector<int> collect_slot(result.tree.num_nodes(), -1);
    for (size_t i = 0; i < collect.size(); ++i) {
      collect_slot[collect[i].node] = static_cast<int>(i);
    }

    for (size_t b = 0; b < batches.size(); ++b) {
      tracker.ChargeScan(train);
      std::vector<int> node_slot(result.tree.num_nodes(), -1);
      for (size_t i : batches[b]) {
        node_slot[active[i].node] = static_cast<int>(i);
      }
      for (RecordId r = 0; r < n; ++r) {
        NodeId id = nid[r];
        if (!result.tree.node(id).is_leaf &&
            result.tree.node(id).left != kInvalidNode) {
          const TreeNode& tn = result.tree.node(id);
          id = tn.split.RoutesLeft(train, r) ? tn.left : tn.right;
          if (b + 1 == batches.size()) nid[r] = id;  // final routing pass
        }
        const int slot =
            id < static_cast<NodeId>(node_slot.size()) ? node_slot[id] : -1;
        if (slot >= 0) {
          RfNode& rn = active[slot];
          for (AttrId a = 0; a < schema.num_attrs(); ++a) {
            const double v = schema.is_numeric(a)
                                 ? train.numeric(a, r)
                                 : static_cast<double>(
                                       train.categorical(a, r));
            auto [it, inserted] = rn.avc[a].try_emplace(v);
            if (inserted) it->second.assign(nc, 0);
            it->second[train.label(r)]++;
          }
          continue;
        }
        if (b + 1 == batches.size()) {
          const int cslot = id < static_cast<NodeId>(collect_slot.size())
                                ? collect_slot[id]
                                : -1;
          if (cslot >= 0) collect[cslot].rids.push_back(r);
        }
      }
    }

    for (CollectNode& cn : collect) {
      tracker.ChargeBuffered(static_cast<int64_t>(cn.rids.size()));
      BuildExactSubtree(train, cn.rids, options_.base, &result.tree, cn.node,
                        &tracker);
    }
    collect.clear();

    std::vector<RfNode> next;
    for (RfNode& rn : active) {
      const NodeId node_id = rn.node;
      const std::vector<int64_t> counts =
          result.tree.node(node_id).class_counts;
      std::vector<int64_t> left_counts;
      ExactSplit best;
      const bool stop =
          IsPure(counts) || rn.records < options_.base.min_split_records ||
          rn.depth >= options_.base.max_depth ||
          (options_.base.prune &&
           ShouldPruneBeforeExpand(counts, schema.num_attrs()));
      if (!stop) {
        best = BestSplitFromAvc(rn, schema, counts, &left_counts);
      }
      if (stop || !best.valid || best.gini >= Gini(counts) - 1e-12) {
        result.tree.mutable_node(node_id).is_leaf = true;
        continue;
      }
      std::vector<int64_t> right_counts(nc);
      int64_t left_n = 0;
      int64_t right_n = 0;
      for (ClassId c = 0; c < nc; ++c) {
        right_counts[c] = counts[c] - left_counts[c];
        left_n += left_counts[c];
        right_n += right_counts[c];
      }
      if (left_n == 0 || right_n == 0) {
        result.tree.mutable_node(node_id).is_leaf = true;
        continue;
      }

      TreeNode left;
      left.depth = rn.depth + 1;
      left.class_counts = left_counts;
      left.leaf_class = Majority(left_counts);
      TreeNode right;
      right.depth = rn.depth + 1;
      right.class_counts = right_counts;
      right.leaf_class = Majority(right_counts);
      const NodeId left_id = result.tree.AddNode(std::move(left));
      const NodeId right_id = result.tree.AddNode(std::move(right));
      TreeNode& parent = result.tree.mutable_node(node_id);
      parent.is_leaf = false;
      parent.split = best.split;
      parent.left = left_id;
      parent.right = right_id;

      auto enqueue = [&](NodeId child, int64_t child_n, int depth) {
        if (child_n <= rf_threshold) {
          collect.push_back({child, {}});
        } else {
          RfNode child_rn;
          child_rn.node = child;
          child_rn.depth = depth;
          child_rn.records = child_n;
          child_rn.avc.resize(schema.num_attrs());
          next.push_back(std::move(child_rn));
        }
      };
      enqueue(left_id, left_n, rn.depth + 1);
      enqueue(right_id, right_n, rn.depth + 1);
    }
    active = std::move(next);

    po.scan_seconds = pass_timer.Seconds();
    po.bytes_read = result.stats.bytes_read - bytes_before;
    po.tree_nodes = result.tree.num_nodes();
    if (observer != nullptr) observer->OnPass(po);
  }

  if (options_.base.prune) PruneTreeMdl(&result.tree);
  result.stats.tree_nodes = result.tree.num_nodes();
  result.stats.tree_depth = result.tree.Depth();
  result.stats.wall_seconds = timer.Seconds();
  if (observer != nullptr) observer->OnBuildEnd(result.stats);
  return result;
}

}  // namespace cmp
