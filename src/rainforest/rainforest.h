#ifndef CMP_RAINFOREST_RAINFOREST_H_
#define CMP_RAINFOREST_RAINFOREST_H_

#include <string>

#include "tree/builder.h"

namespace cmp {

/// Options specific to RainForest.
struct RainForestOptions {
  BuilderOptions base;
  /// Size of the AVC-group buffer in entries, as in the paper's
  /// experiments (RF-Hybrid with a fixed 2.5 million entry buffer; with
  /// two classes and 4-byte counters that is the 20 MB of Figure 19).
  int64_t avc_buffer_entries = 2500000;
};

/// Reimplementation of RainForest (Gehrke, Ramakrishnan & Ganti, VLDB
/// 1998) in its RF-Hybrid flavor, the fastest baseline in the paper's
/// Figures 16-18.
///
/// Per level, one scan aggregates every active node's AVC-group (per
/// attribute: distinct value -> class counts); exact splits fall out of
/// the AVC-sets. When the active nodes' AVC-groups would exceed the
/// buffer, nodes are processed in batches of one scan each. The large
/// AVC buffer also lets RF-Hybrid switch to an in-memory build as soon as
/// a partition fits in it — that memory-for-speed trade is why the paper
/// finds RainForest slightly faster than CMP but at ~20 MB of memory
/// (Figure 19).
class RainForestBuilder : public TreeBuilder {
 public:
  explicit RainForestBuilder(RainForestOptions options = {})
      : options_(options) {}

  BuildResult Build(const Dataset& train) override;
  std::string name() const override { return "RainForest"; }

 private:
  RainForestOptions options_;
};

}  // namespace cmp

#endif  // CMP_RAINFOREST_RAINFOREST_H_
