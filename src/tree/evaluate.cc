#include "tree/evaluate.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/random.h"

namespace cmp {

Evaluation Evaluate(const DecisionTree& tree, const Dataset& ds) {
  Evaluation out;
  const int nc = ds.num_classes();
  out.confusion.assign(nc, std::vector<int64_t>(nc, 0));
  for (RecordId r = 0; r < ds.num_records(); ++r) {
    const ClassId actual = ds.label(r);
    const ClassId predicted = tree.Classify(ds, r);
    out.total++;
    if (actual == predicted) out.correct++;
    out.confusion[actual][predicted]++;
  }
  return out;
}

std::string Evaluation::ToString(const Schema& schema) const {
  std::ostringstream os;
  os << "accuracy: " << std::fixed << std::setprecision(4) << Accuracy()
     << " (" << correct << "/" << total << ")\n";
  os << std::setw(12) << "actual\\pred";
  for (ClassId c = 0; c < schema.num_classes(); ++c) {
    os << std::setw(10) << schema.class_name(c);
  }
  os << '\n';
  for (ClassId a = 0; a < schema.num_classes(); ++a) {
    os << std::setw(12) << schema.class_name(a);
    for (ClassId p = 0; p < schema.num_classes(); ++p) {
      os << std::setw(10) << confusion[a][p];
    }
    os << '\n';
  }
  return os.str();
}

void TrainTestSplit(int64_t num_records, double test_fraction, uint64_t seed,
                    std::vector<RecordId>* train_ids,
                    std::vector<RecordId>* test_ids) {
  std::vector<RecordId> ids(num_records);
  for (int64_t i = 0; i < num_records; ++i) ids[i] = i;
  // Fisher-Yates with the library RNG for reproducibility.
  Rng rng(seed);
  for (int64_t i = num_records - 1; i > 0; --i) {
    const int64_t j = rng.UniformInt(0, i);
    std::swap(ids[i], ids[j]);
  }
  const int64_t test_n = static_cast<int64_t>(num_records * test_fraction);
  test_ids->assign(ids.begin(), ids.begin() + test_n);
  train_ids->assign(ids.begin() + test_n, ids.end());
}

}  // namespace cmp
