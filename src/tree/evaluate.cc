#include "tree/evaluate.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/random.h"
#include "infer/batch_predictor.h"
#include "infer/compiled_tree.h"

namespace cmp {

Evaluation Evaluate(const DecisionTree& tree, const Dataset& ds) {
  Evaluation out;
  // The evaluation dataset may carry classes the tree never saw in
  // training (or vice versa), so the confusion matrix spans both label
  // spaces and indexing is guarded rather than trusted.
  const int nc = std::max(ds.num_classes(), tree.schema().num_classes());
  out.confusion.assign(nc, std::vector<int64_t>(nc, 0));

  const CompiledTree compiled = CompiledTree::Compile(tree);
  const BatchPredictor predictor(&compiled);
  const BatchResult result = predictor.Predict(ds);
  for (RecordId r = 0; r < ds.num_records(); ++r) {
    const ClassId actual = ds.label(r);
    const ClassId predicted = result.labels[r];
    out.total++;
    if (actual == predicted) out.correct++;
    if (actual >= 0 && actual < nc && predicted >= 0 && predicted < nc) {
      out.confusion[actual][predicted]++;
    }
  }
  return out;
}

std::string Evaluation::ToString(const Schema& schema) const {
  std::ostringstream os;
  os << "accuracy: " << std::fixed << std::setprecision(4) << Accuracy()
     << " (" << correct << "/" << total << ")\n";
  // The matrix may be wider than the schema when the tree and the
  // dataset disagree on the class list; unnamed classes get a fallback.
  const ClassId nc = static_cast<ClassId>(confusion.size());
  auto name = [&schema](ClassId c) {
    return c < schema.num_classes() ? schema.class_name(c)
                                    : "class" + std::to_string(c);
  };
  os << std::setw(12) << "actual\\pred";
  for (ClassId c = 0; c < nc; ++c) {
    os << std::setw(10) << name(c);
  }
  os << '\n';
  for (ClassId a = 0; a < nc; ++a) {
    os << std::setw(12) << name(a);
    for (ClassId p = 0; p < nc; ++p) {
      os << std::setw(10) << confusion[a][p];
    }
    os << '\n';
  }
  return os.str();
}

void TrainTestSplit(int64_t num_records, double test_fraction, uint64_t seed,
                    std::vector<RecordId>* train_ids,
                    std::vector<RecordId>* test_ids) {
  std::vector<RecordId> ids(num_records);
  for (int64_t i = 0; i < num_records; ++i) ids[i] = i;
  // Fisher-Yates with the library RNG for reproducibility.
  Rng rng(seed);
  for (int64_t i = num_records - 1; i > 0; --i) {
    const int64_t j = rng.UniformInt(0, i);
    std::swap(ids[i], ids[j]);
  }
  const int64_t test_n = static_cast<int64_t>(num_records * test_fraction);
  test_ids->assign(ids.begin(), ids.begin() + test_n);
  train_ids->assign(ids.begin() + test_n, ids.end());
}

}  // namespace cmp
