#ifndef CMP_TREE_BUILDER_H_
#define CMP_TREE_BUILDER_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/dataset.h"
#include "common/stats.h"
#include "tree/tree.h"

namespace cmp {

class TrainObserver;  // tree/observer.h

/// Options shared by every tree builder in the library so comparison
/// benchmarks (Figures 16-19) drive all algorithms identically.
struct BuilderOptions {
  /// Stop splitting when a node has fewer records than this.
  int64_t min_split_records = 2;
  /// Hard cap on tree depth (safety valve; the paper's trees are shallow
  /// compared to this).
  int max_depth = 60;
  /// Nodes whose partition has at most this many records are finished by
  /// an exact in-memory builder instead of further scans (the standard
  /// "fits in memory" switch; RainForest's RF-Hybrid does this
  /// explicitly). 0 disables the switch.
  int64_t in_memory_threshold = 4096;
  /// Enable PUBLIC(1)-style MDL pruning during and after construction.
  bool prune = true;
  /// Worker threads for builders that parallelize construction (CMP,
  /// Exact); 1 builds on the calling thread, 0 means
  /// std::thread::hardware_concurrency. The built tree is bit-identical
  /// for every value of this knob (see DESIGN.md, "Parallel training").
  int num_threads = 1;
  /// Optional training observability hook (per-pass timings, scan bytes,
  /// frontier sizes; see tree/observer.h). Borrowed, may be null; the
  /// built tree is identical with or without an observer.
  TrainObserver* observer = nullptr;
};

/// Result of building a tree: the classifier plus the cost counters used
/// to reproduce the paper's figures.
struct BuildResult {
  DecisionTree tree;
  BuildStats stats;
  /// Meta-builders that produce an additive ensemble (the "boost"
  /// registry entry) fill this with every member tree, in round order;
  /// `tree` is then the first member (a usable standalone classifier).
  /// Single-tree builders leave it empty.
  std::vector<DecisionTree> forest;
};

/// Common interface of SPRINT, CLOUDS, RainForest and the CMP family.
class TreeBuilder {
 public:
  virtual ~TreeBuilder() = default;

  /// Builds a decision tree for `train`. Implementations never mutate the
  /// dataset.
  virtual BuildResult Build(const Dataset& train) = 0;

  /// Short algorithm name for benchmark tables ("SPRINT", "CMP-B", ...).
  virtual std::string name() const = 0;
};

// ---------------------------------------------------------------------
// Builder registry: one factory for every algorithm in the library, so
// tools, cross-validation, tests and benches dispatch by name instead of
// each hand-rolling its own if-chain. Implemented in tree/registry.cc
// (CMake target cmp_registry, which links every algorithm library).

/// Knobs of the "boost" meta-builder (src/boost/boost.h documents the
/// algorithm); ignored by every other factory.
struct BoostConfig {
  /// Maximum boosting rounds (= trees in the ensemble).
  int rounds = 50;
  /// Learning rate applied to every leaf value.
  double shrinkage = 0.1;
  /// Depth cap of each weak CMP-B tree.
  int weak_depth = 6;
  /// Fraction of the training set (taken deterministically from the
  /// tail) held out for early stopping; 0 disables early stopping.
  double holdout = 0.2;
  /// Rounds without holdout-loss improvement before stopping.
  int patience = 5;
};

/// Configuration handed to registry factories. `base` is forwarded to
/// every builder; `intervals` parameterizes the histogram/grid-based
/// ones (CMP family, CLOUDS) and is ignored by the rest; `boost` only
/// reaches the "boost" meta-builder.
struct BuilderConfig {
  BuilderOptions base;
  int intervals = 100;
  BoostConfig boost;
};

using TreeBuilderFactory =
    std::function<std::unique_ptr<TreeBuilder>(const BuilderConfig&)>;

/// Registers `factory` under `name` (lowercase, e.g. "cmp-b"). The
/// library's own algorithms are pre-registered; call this to add
/// external builders to the same dispatch surface. Re-registering a name
/// replaces the previous factory.
void RegisterTreeBuilder(const std::string& name, TreeBuilderFactory factory);

/// Constructs the builder registered under `name`, or null when the name
/// is unknown (callers render RegisteredTreeBuilders() in their error).
std::unique_ptr<TreeBuilder> MakeTreeBuilder(const std::string& name,
                                             const BuilderConfig& config = {});

/// All registered names, sorted ascending.
std::vector<std::string> RegisteredTreeBuilders();

}  // namespace cmp

#endif  // CMP_TREE_BUILDER_H_
