#include "tree/split.h"

#include <sstream>
#include <utility>

namespace cmp {

Split Split::Numeric(AttrId attr, double threshold) {
  Split s;
  s.kind = Kind::kNumeric;
  s.attr = attr;
  s.threshold = threshold;
  return s;
}

Split Split::Categorical(AttrId attr, std::vector<uint8_t> left_subset) {
  Split s;
  s.kind = Kind::kCategorical;
  s.attr = attr;
  s.left_subset = std::move(left_subset);
  return s;
}

Split Split::Linear(AttrId x, AttrId y, double a, double b, double c) {
  Split s;
  s.kind = Kind::kLinear;
  s.attr = x;
  s.attr2 = y;
  s.a = a;
  s.b = b;
  s.c = c;
  return s;
}

std::string Split::ToString(const Schema& schema) const {
  std::ostringstream os;
  switch (kind) {
    case Kind::kNumeric:
      os << schema.attr(attr).name << " <= " << threshold;
      break;
    case Kind::kCategorical: {
      os << schema.attr(attr).name << " in {";
      bool first = true;
      for (size_t v = 0; v < left_subset.size(); ++v) {
        if (left_subset[v] != 0) {
          if (!first) os << ",";
          os << v;
          first = false;
        }
      }
      os << "}";
      break;
    }
    case Kind::kLinear:
      os << a << "*" << schema.attr(attr).name << " + " << b << "*"
         << schema.attr(attr2).name << " <= " << c;
      break;
  }
  return os.str();
}

}  // namespace cmp
