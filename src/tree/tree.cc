#include "tree/tree.h"

#include <algorithm>
#include <cassert>
#include <functional>
#include <sstream>

namespace cmp {

NodeId DecisionTree::AddNode(TreeNode node) {
  nodes_.push_back(std::move(node));
  return static_cast<NodeId>(nodes_.size()) - 1;
}

void DecisionTree::Graft(NodeId at, const DecisionTree& sub) {
  assert(!sub.empty());
  const NodeId base = static_cast<NodeId>(nodes_.size());
  const int depth_delta = nodes_[at].depth - sub.node(0).depth;
  auto remap = [&](NodeId id) -> NodeId {
    if (id == kInvalidNode) return kInvalidNode;
    return id == 0 ? at : base + id - 1;
  };
  for (NodeId id = 1; id < sub.num_nodes(); ++id) {
    TreeNode n = sub.node(id);
    n.left = remap(n.left);
    n.right = remap(n.right);
    n.depth += depth_delta;
    nodes_.push_back(std::move(n));
  }
  TreeNode root = sub.node(0);
  root.left = remap(root.left);
  root.right = remap(root.right);
  root.depth += depth_delta;
  nodes_[at] = std::move(root);
}

ClassId DecisionTree::Classify(const Dataset& ds, RecordId r) const {
  return nodes_[LeafOf(ds, r)].leaf_class;
}

NodeId DecisionTree::LeafOf(const Dataset& ds, RecordId r) const {
  assert(!nodes_.empty());
  NodeId id = 0;
  while (!nodes_[id].is_leaf) {
    const TreeNode& n = nodes_[id];
    id = n.split.RoutesLeft(ds, r) ? n.left : n.right;
  }
  return id;
}

int DecisionTree::NumLeaves() const {
  // Count only nodes reachable from the root.
  if (nodes_.empty()) return 0;
  int leaves = 0;
  std::vector<NodeId> stack = {0};
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    const TreeNode& n = nodes_[id];
    if (n.is_leaf) {
      ++leaves;
    } else {
      stack.push_back(n.left);
      stack.push_back(n.right);
    }
  }
  return leaves;
}

int DecisionTree::Depth() const {
  if (nodes_.empty()) return -1;
  int max_depth = 0;
  std::vector<std::pair<NodeId, int>> stack = {{0, 0}};
  while (!stack.empty()) {
    const auto [id, d] = stack.back();
    stack.pop_back();
    max_depth = std::max(max_depth, d);
    const TreeNode& n = nodes_[id];
    if (!n.is_leaf) {
      stack.push_back({n.left, d + 1});
      stack.push_back({n.right, d + 1});
    }
  }
  return max_depth;
}

void DecisionTree::MakeLeaf(NodeId id) {
  TreeNode& n = nodes_[id];
  n.is_leaf = true;
  n.left = kInvalidNode;
  n.right = kInvalidNode;
  ClassId best = 0;
  for (ClassId c = 1; c < static_cast<ClassId>(n.class_counts.size()); ++c) {
    if (n.class_counts[c] > n.class_counts[best]) best = c;
  }
  n.leaf_class = n.class_counts.empty() ? 0 : best;
}

void DecisionTree::Compact() {
  if (nodes_.empty()) return;
  std::vector<NodeId> remap(nodes_.size(), kInvalidNode);
  std::vector<TreeNode> compacted;
  // Preorder copy keeps parent-before-child ordering.
  std::function<NodeId(NodeId)> copy = [&](NodeId id) -> NodeId {
    const NodeId new_id = static_cast<NodeId>(compacted.size());
    remap[id] = new_id;
    compacted.push_back(nodes_[id]);
    if (!nodes_[id].is_leaf) {
      compacted[new_id].left = copy(nodes_[id].left);
      compacted[new_id].right = copy(nodes_[id].right);
    }
    return new_id;
  };
  copy(0);
  nodes_ = std::move(compacted);
}

void DecisionTree::Render(NodeId id, int indent, std::string* out) const {
  const TreeNode& n = nodes_[id];
  out->append(static_cast<size_t>(indent) * 2, ' ');
  if (n.is_leaf) {
    out->append("leaf: ");
    out->append(schema_.class_name(n.leaf_class));
    std::ostringstream os;
    os << " (";
    for (size_t c = 0; c < n.class_counts.size(); ++c) {
      if (c > 0) os << ", ";
      os << n.class_counts[c];
    }
    os << ")\n";
    out->append(os.str());
    return;
  }
  out->append(n.split.ToString(schema_));
  out->append("\n");
  Render(n.left, indent + 1, out);
  Render(n.right, indent + 1, out);
}

std::string DecisionTree::ToString() const {
  if (nodes_.empty()) return "(empty tree)\n";
  std::string out;
  Render(0, 0, &out);
  return out;
}

}  // namespace cmp
