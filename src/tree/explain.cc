#include "tree/explain.h"

#include <sstream>

namespace cmp {

Explanation Explain(const DecisionTree& tree, const Dataset& ds,
                    RecordId r) {
  Explanation out;
  if (tree.empty()) return out;
  NodeId id = 0;
  while (!tree.node(id).is_leaf) {
    const TreeNode& n = tree.node(id);
    DecisionStep step;
    step.node = id;
    step.test = n.split.ToString(tree.schema());
    step.went_left = n.split.RoutesLeft(ds, r);
    out.path.push_back(std::move(step));
    id = out.path.back().went_left ? n.left : n.right;
  }
  out.leaf = id;
  out.predicted = tree.node(id).leaf_class;
  out.leaf_counts = tree.node(id).class_counts;
  return out;
}

std::string Explanation::ToString(const Schema& schema) const {
  std::ostringstream os;
  for (const DecisionStep& step : path) {
    os << (step.went_left ? "  [yes] " : "  [no]  ") << step.test << '\n';
  }
  os << "=> " << schema.class_name(predicted) << " (";
  for (size_t c = 0; c < leaf_counts.size(); ++c) {
    if (c > 0) os << ", ";
    os << leaf_counts[c];
  }
  os << ")\n";
  return os.str();
}

std::string ToDot(const DecisionTree& tree) {
  std::ostringstream os;
  os << "digraph cmp_tree {\n  node [shape=box, fontname=\"Helvetica\"];\n";
  for (NodeId id = 0; id < tree.num_nodes(); ++id) {
    const TreeNode& n = tree.node(id);
    if (n.is_leaf) {
      int64_t total = 0;
      for (int64_t c : n.class_counts) total += c;
      os << "  n" << id << " [label=\""
         << tree.schema().class_name(n.leaf_class) << "\\n" << total
         << " records\", style=filled, fillcolor=lightgray];\n";
    } else {
      std::string label = n.split.ToString(tree.schema());
      // Escape quotes for DOT.
      std::string escaped;
      for (char c : label) {
        if (c == '"') escaped += '\\';
        escaped += c;
      }
      os << "  n" << id << " [label=\"" << escaped << "\"];\n";
      os << "  n" << id << " -> n" << n.left << " [label=\"yes\"];\n";
      os << "  n" << id << " -> n" << n.right << " [label=\"no\"];\n";
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace cmp
