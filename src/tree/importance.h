#ifndef CMP_TREE_IMPORTANCE_H_
#define CMP_TREE_IMPORTANCE_H_

#include <string>
#include <vector>

#include "tree/tree.h"

namespace cmp {

/// Gini-decrease variable importance: for every internal node, the
/// weighted impurity reduction of its split is credited to the split's
/// attribute(s) — both attributes, half each, for linear splits. Scores
/// are normalized to sum to 1 (all zeros if the tree is a single leaf).
std::vector<double> GiniImportance(const DecisionTree& tree);

/// Tabular rendering, attributes sorted by descending importance.
std::string ImportanceToString(const DecisionTree& tree,
                               const std::vector<double>& importance);

}  // namespace cmp

#endif  // CMP_TREE_IMPORTANCE_H_
