#include "tree/importance.h"

#include <algorithm>
#include <iomanip>
#include <numeric>
#include <sstream>

#include "gini/gini.h"

namespace cmp {

std::vector<double> GiniImportance(const DecisionTree& tree) {
  std::vector<double> importance(tree.schema().num_attrs(), 0.0);
  if (tree.empty()) return importance;
  int64_t root_total = 0;
  for (int64_t c : tree.node(0).class_counts) root_total += c;
  if (root_total == 0) return importance;

  for (NodeId id = 0; id < tree.num_nodes(); ++id) {
    const TreeNode& n = tree.node(id);
    if (n.is_leaf) continue;
    const TreeNode& l = tree.node(n.left);
    const TreeNode& r = tree.node(n.right);
    int64_t node_n = 0;
    for (int64_t c : n.class_counts) node_n += c;
    if (node_n == 0) continue;
    const double decrease =
        Gini(n.class_counts) - SplitGini(l.class_counts, r.class_counts);
    const double weighted =
        decrease * static_cast<double>(node_n) / root_total;
    if (weighted <= 0) continue;
    if (n.split.kind == Split::Kind::kLinear) {
      importance[n.split.attr] += weighted / 2.0;
      importance[n.split.attr2] += weighted / 2.0;
    } else {
      importance[n.split.attr] += weighted;
    }
  }
  const double total =
      std::accumulate(importance.begin(), importance.end(), 0.0);
  if (total > 0) {
    for (double& v : importance) v /= total;
  }
  return importance;
}

std::string ImportanceToString(const DecisionTree& tree,
                               const std::vector<double>& importance) {
  std::vector<AttrId> order(importance.size());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = static_cast<AttrId>(i);
  }
  std::sort(order.begin(), order.end(), [&](AttrId a, AttrId b) {
    return importance[a] > importance[b];
  });
  std::ostringstream os;
  os << std::fixed << std::setprecision(4);
  for (AttrId a : order) {
    if (importance[a] <= 0) continue;
    os << std::setw(14) << tree.schema().attr(a).name << "  "
       << importance[a] << '\n';
  }
  return os.str();
}

}  // namespace cmp
