#ifndef CMP_TREE_SPLIT_H_
#define CMP_TREE_SPLIT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/dataset.h"
#include "common/schema.h"
#include "common/types.h"

namespace cmp {

/// A decision-tree split criterion. Three kinds are supported:
///  - numeric:      attr <= threshold           -> left child
///  - categorical:  attr value in left_subset   -> left child
///  - linear:       a*attr + b*attr2 <= c       -> left child
/// The linear kind is CMP's multivariate split over two numeric
/// attributes (Section 2.3 of the paper).
struct Split {
  enum class Kind { kNumeric, kCategorical, kLinear };

  Kind kind = Kind::kNumeric;
  AttrId attr = kInvalidAttr;
  double threshold = 0.0;
  /// Linear splits only: second attribute and coefficients of
  /// a*x + b*y <= c with x = attr, y = attr2.
  AttrId attr2 = kInvalidAttr;
  double a = 0.0;
  double b = 0.0;
  double c = 0.0;
  /// Categorical splits only, indexed by attribute value.
  std::vector<uint8_t> left_subset;

  /// Factory helpers.
  static Split Numeric(AttrId attr, double threshold);
  static Split Categorical(AttrId attr, std::vector<uint8_t> left_subset);
  static Split Linear(AttrId x, AttrId y, double a, double b, double c);

  /// True if record `r` of `ds` goes to the left child. `DS` is any
  /// record store exposing `numeric(a, r)` / `categorical(a, r)` —
  /// the in-memory Dataset, or the block/stash stores of the
  /// out-of-core training path.
  template <class DS>
  bool RoutesLeft(const DS& ds, RecordId r) const {
    switch (kind) {
      case Kind::kNumeric:
        return ds.numeric(attr, r) <= threshold;
      case Kind::kCategorical: {
        const int32_t v = ds.categorical(attr, r);
        return v >= 0 && v < static_cast<int32_t>(left_subset.size()) &&
               left_subset[v] != 0;
      }
      case Kind::kLinear:
        return a * ds.numeric(attr, r) + b * ds.numeric(attr2, r) <= c;
    }
    return false;
  }

  /// Human-readable rendering, e.g. "salary <= 65000" or
  /// "salary + 0.93*commission <= 95796".
  std::string ToString(const Schema& schema) const;
};

}  // namespace cmp

#endif  // CMP_TREE_SPLIT_H_
