#ifndef CMP_TREE_EVALUATE_H_
#define CMP_TREE_EVALUATE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/dataset.h"
#include "tree/tree.h"

namespace cmp {

/// Classification quality of a tree on a dataset.
struct Evaluation {
  int64_t total = 0;
  int64_t correct = 0;
  /// confusion[actual][predicted].
  std::vector<std::vector<int64_t>> confusion;

  double Accuracy() const {
    return total == 0 ? 0.0
                      : static_cast<double>(correct) /
                            static_cast<double>(total);
  }
  double ErrorRate() const { return 1.0 - Accuracy(); }

  /// Tabular rendering of the confusion matrix.
  std::string ToString(const Schema& schema) const;
};

/// Runs `tree` over every record of `ds`.
Evaluation Evaluate(const DecisionTree& tree, const Dataset& ds);

/// Deterministically shuffles record ids and splits them into train/test
/// with the given test fraction.
void TrainTestSplit(int64_t num_records, double test_fraction, uint64_t seed,
                    std::vector<RecordId>* train_ids,
                    std::vector<RecordId>* test_ids);

}  // namespace cmp

#endif  // CMP_TREE_EVALUATE_H_
