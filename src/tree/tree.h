#ifndef CMP_TREE_TREE_H_
#define CMP_TREE_TREE_H_

#include <string>
#include <vector>

#include "common/dataset.h"
#include "common/types.h"
#include "tree/split.h"

namespace cmp {

/// One node of a decision tree. Leaves carry a predicted class and the
/// training class distribution; internal nodes carry a Split plus child
/// node ids.
struct TreeNode {
  bool is_leaf = true;
  Split split;
  NodeId left = kInvalidNode;
  NodeId right = kInvalidNode;
  ClassId leaf_class = kInvalidClass;
  /// Training per-class record counts that reached this node.
  std::vector<int64_t> class_counts;
  int depth = 0;
};

/// A binary decision tree over a Schema, stored as a flat node array with
/// node 0 as the root.
class DecisionTree {
 public:
  DecisionTree() = default;
  explicit DecisionTree(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }
  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  const TreeNode& node(NodeId id) const { return nodes_[id]; }
  TreeNode& mutable_node(NodeId id) { return nodes_[id]; }
  bool empty() const { return nodes_.empty(); }

  /// Appends a node and returns its id.
  NodeId AddNode(TreeNode node);

  /// Splices a detached tree in place of node `at`: `sub`'s root
  /// overwrites `at` (depths shifted so sub's root keeps `at`'s depth)
  /// and the remaining nodes are appended in sub's id order, so grafting
  /// subtrees built in parallel in a fixed order reproduces the exact
  /// node numbering a serial build would have produced.
  void Graft(NodeId at, const DecisionTree& sub);

  /// Classifies record `r` of `ds` (which must share the schema).
  ClassId Classify(const Dataset& ds, RecordId r) const;

  /// Id of the leaf record `r` lands in.
  NodeId LeafOf(const Dataset& ds, RecordId r) const;

  /// Number of leaves.
  int NumLeaves() const;

  /// Maximum node depth (root = 0); -1 for an empty tree.
  int Depth() const;

  /// Indented multi-line rendering of the whole tree.
  std::string ToString() const;

  /// Replaces the subtree rooted at `id` by a leaf predicting the
  /// majority class of its recorded class counts (used by pruning).
  /// Descendant nodes become unreachable; Compact() removes them.
  void MakeLeaf(NodeId id);

  /// Rebuilds the node array without unreachable nodes.
  void Compact();

 private:
  void Render(NodeId id, int indent, std::string* out) const;

  Schema schema_;
  std::vector<TreeNode> nodes_;
};

}  // namespace cmp

#endif  // CMP_TREE_TREE_H_
