#include "tree/observer.h"

#include <sstream>

#include "common/cpu_features.h"

namespace cmp {

namespace {

// Minimal JSON string escaping (names are ASCII identifiers, but stay
// safe for arbitrary builder names).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace

void TrainStatsCollector::OnBuildStart(const std::string& builder,
                                       int64_t records) {
  builder_ = builder;
  kernel_isa_ = KernelIsaName(ActiveKernelIsa());
  records_ = records;
  passes_.clear();
  final_stats_ = BuildStats{};
  finished_ = false;
}

void TrainStatsCollector::OnPass(const PassObservation& pass) {
  passes_.push_back(pass);
}

void TrainStatsCollector::OnBuildEnd(const BuildStats& stats) {
  final_stats_ = stats;
  finished_ = true;
}

std::string TrainStatsCollector::ToJson() const {
  std::ostringstream os;
  os << "{\n";
  os << "  \"builder\": \"" << JsonEscape(builder_) << "\",\n";
  os << "  \"kernel_isa\": \"" << JsonEscape(kernel_isa_) << "\",\n";
  os << "  \"records\": " << records_ << ",\n";
  os << "  \"passes\": [\n";
  for (size_t i = 0; i < passes_.size(); ++i) {
    const PassObservation& p = passes_[i];
    os << "    {\"pass\": " << p.pass
       << ", \"scan_seconds\": " << p.scan_seconds
       << ", \"plan_seconds\": " << p.plan_seconds
       << ", \"finish_seconds\": " << p.finish_seconds
       << ", \"records_scanned\": " << p.records_scanned
       << ", \"bytes_read\": " << p.bytes_read
       << ", \"frontier_fresh\": " << p.frontier_fresh
       << ", \"frontier_pending\": " << p.frontier_pending
       << ", \"frontier_collect\": " << p.frontier_collect
       << ", \"alive_intervals\": " << p.alive_intervals
       << ", \"buffered_records\": " << p.buffered_records
       << ", \"buffer_bytes\": " << p.buffer_bytes
       << ", \"tree_nodes\": " << p.tree_nodes
       << ", \"kernel_seconds\": " << p.kernel_seconds
       << ", \"code_cache_bytes\": " << p.code_cache_bytes
       << ", \"sibling_subtractions\": " << p.sibling_subtractions
       << ", \"workers\": " << p.workers
       << ", \"wire_bytes_per_pass\": " << p.wire_bytes
       << ", \"merge_seconds\": " << p.merge_seconds
       << ", \"sketch_bytes\": " << p.sketch_bytes
       << ", \"refit_leaves_regrown\": " << p.refit_leaves_regrown << "}"
       << (i + 1 < passes_.size() ? "," : "") << "\n";
  }
  os << "  ],\n";
  const BuildStats& s = final_stats_;
  os << "  \"final\": {\n";
  os << "    \"dataset_scans\": " << s.dataset_scans << ",\n";
  os << "    \"records_read\": " << s.records_read << ",\n";
  os << "    \"bytes_read\": " << s.bytes_read << ",\n";
  os << "    \"bytes_written\": " << s.bytes_written << ",\n";
  os << "    \"buffered_records\": " << s.buffered_records << ",\n";
  os << "    \"sort_comparisons\": " << s.sort_comparisons << ",\n";
  os << "    \"peak_memory_bytes\": " << s.peak_memory_bytes << ",\n";
  os << "    \"tree_nodes\": " << s.tree_nodes << ",\n";
  os << "    \"tree_depth\": " << s.tree_depth << ",\n";
  os << "    \"predictions_total\": " << s.predictions_total << ",\n";
  os << "    \"predictions_correct\": " << s.predictions_correct << ",\n";
  os << "    \"root_alive_intervals\": " << s.root_alive_intervals << ",\n";
  os << "    \"wall_seconds\": " << s.wall_seconds << "\n";
  os << "  }\n";
  os << "}\n";
  return os.str();
}

}  // namespace cmp
