#ifndef CMP_TREE_SERIALIZE_H_
#define CMP_TREE_SERIALIZE_H_

#include <string>

#include "tree/tree.h"

namespace cmp {

/// Serializes a tree (with its schema) to a line-oriented text format
/// suitable for files or logs. Round-trips exactly through
/// DeserializeTree (thresholds are written with hexfloat precision).
std::string SerializeTree(const DecisionTree& tree);

/// Parses the output of SerializeTree. Returns false on malformed input.
bool DeserializeTree(const std::string& text, DecisionTree* out);

/// Convenience wrappers writing/reading the text format to a file.
bool SaveTree(const DecisionTree& tree, const std::string& path);
bool LoadTree(const std::string& path, DecisionTree* out);

}  // namespace cmp

#endif  // CMP_TREE_SERIALIZE_H_
