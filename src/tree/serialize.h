#ifndef CMP_TREE_SERIALIZE_H_
#define CMP_TREE_SERIALIZE_H_

#include <string>
#include <vector>

#include "tree/tree.h"

namespace cmp {

/// Serializes a tree (with its schema) to a line-oriented text format
/// suitable for files or logs. Round-trips exactly through
/// DeserializeTree (thresholds are written with hexfloat precision).
std::string SerializeTree(const DecisionTree& tree);

/// Parses the output of SerializeTree. Returns false on malformed input.
bool DeserializeTree(const std::string& text, DecisionTree* out);

/// Convenience wrappers writing/reading the text format to a file.
bool SaveTree(const DecisionTree& tree, const std::string& path);
bool LoadTree(const std::string& path, DecisionTree* out);

/// Multi-tree text format ("cmp-forest 1"): a tree count followed by
/// each member as a line-counted SerializeTree block. Used for the
/// additive ensembles the boost builder produces; every member
/// round-trips through the single-tree parser, so the forest format
/// inherits all of its validation.
std::string SerializeForest(const std::vector<DecisionTree>& trees);

/// Parses SerializeForest output (at least one tree). Returns false on
/// malformed input.
bool DeserializeForest(const std::string& text,
                       std::vector<DecisionTree>* out);

bool SaveForest(const std::vector<DecisionTree>& trees,
                const std::string& path);
bool LoadForest(const std::string& path, std::vector<DecisionTree>* out);

/// Loads either text format by sniffing the header line: a "cmp-tree"
/// file yields one tree, a "cmp-forest" file all of its members. The
/// tool entry points use this so every --tree flag accepts both.
bool LoadTrees(const std::string& path, std::vector<DecisionTree>* out);

}  // namespace cmp

#endif  // CMP_TREE_SERIALIZE_H_
