#include "tree/crossval.h"

#include <cassert>
#include <cmath>

#include "common/random.h"
#include "tree/evaluate.h"

namespace cmp {

double CrossValResult::MeanAccuracy() const {
  if (fold_accuracy.empty()) return 0.0;
  double sum = 0.0;
  for (double a : fold_accuracy) sum += a;
  return sum / static_cast<double>(fold_accuracy.size());
}

double CrossValResult::StdDevAccuracy() const {
  if (fold_accuracy.size() < 2) return 0.0;
  const double mean = MeanAccuracy();
  double ss = 0.0;
  for (double a : fold_accuracy) ss += (a - mean) * (a - mean);
  return std::sqrt(ss / static_cast<double>(fold_accuracy.size() - 1));
}

CrossValResult CrossValidate(TreeBuilder* builder, const Dataset& data,
                             int folds, uint64_t seed, bool keep_trees) {
  assert(folds >= 2);
  CrossValResult out;
  const int64_t n = data.num_records();
  std::vector<RecordId> ids(n);
  for (int64_t i = 0; i < n; ++i) ids[i] = i;
  Rng rng(seed);
  for (int64_t i = n - 1; i > 0; --i) {
    const int64_t j = rng.UniformInt(0, i);
    std::swap(ids[i], ids[j]);
  }

  for (int fold = 0; fold < folds; ++fold) {
    std::vector<RecordId> train_ids;
    std::vector<RecordId> test_ids;
    for (int64_t i = 0; i < n; ++i) {
      if (static_cast<int>(i % folds) == fold) {
        test_ids.push_back(ids[i]);
      } else {
        train_ids.push_back(ids[i]);
      }
    }
    const Dataset train = data.Subset(train_ids);
    const Dataset test = data.Subset(test_ids);
    BuildResult result = builder->Build(train);
    out.total_stats.Accumulate(result.stats);
    out.fold_accuracy.push_back(Evaluate(result.tree, test).Accuracy());
    if (keep_trees) out.trees.push_back(std::move(result.tree));
  }
  return out;
}

}  // namespace cmp
