#ifndef CMP_TREE_CROSSVAL_H_
#define CMP_TREE_CROSSVAL_H_

#include <cstdint>
#include <vector>

#include "common/dataset.h"
#include "tree/builder.h"

namespace cmp {

/// Result of a k-fold cross-validation run.
struct CrossValResult {
  /// Held-out accuracy per fold.
  std::vector<double> fold_accuracy;
  /// Training cost counters accumulated across folds.
  BuildStats total_stats;
  /// The per-fold trees, in fold order — only populated when
  /// CrossValidate is called with keep_trees, typically to feed an
  /// EnsemblePredictor (infer/ensemble.h) that votes the k folds.
  std::vector<DecisionTree> trees;

  double MeanAccuracy() const;
  /// Sample standard deviation of the fold accuracies.
  double StdDevAccuracy() const;
};

/// Runs k-fold cross-validation of `builder` on `data` with a
/// deterministic shuffle. With `keep_trees` the k fold trees are
/// returned in CrossValResult::trees instead of being discarded.
CrossValResult CrossValidate(TreeBuilder* builder, const Dataset& data,
                             int folds, uint64_t seed = 1,
                             bool keep_trees = false);

}  // namespace cmp

#endif  // CMP_TREE_CROSSVAL_H_
