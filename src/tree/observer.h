#ifndef CMP_TREE_OBSERVER_H_
#define CMP_TREE_OBSERVER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.h"

namespace cmp {

/// One completed pass (scan round / tree level) of a scan-based tree
/// builder. CMP fills every field from its layered pipeline; the other
/// builders report the coarse subset that exists for them (pass index,
/// records, frontier size, tree size) and leave the rest at zero.
struct PassObservation {
  int pass = 0;  // 0-based pass index
  /// Wall seconds routing records + filling histograms this pass.
  double scan_seconds = 0.0;
  /// Wall seconds analyzing bundles, planning and resolving splits.
  double plan_seconds = 0.0;
  /// Wall seconds finishing in-memory partitions with the exact builder.
  double finish_seconds = 0.0;
  int64_t records_scanned = 0;
  /// Bytes read this pass (real I/O for streamed builds, disk-simulation
  /// charges otherwise).
  int64_t bytes_read = 0;
  /// Frontier composition at the start of the pass.
  int64_t frontier_fresh = 0;    // nodes awaiting their first histograms
  int64_t frontier_pending = 0;  // approximate splits awaiting resolution
  int64_t frontier_collect = 0;  // partitions being collected for exact finish
  /// Alive intervals across all pending splits (nested ones included).
  int64_t alive_intervals = 0;
  /// Records set aside in pending buffers during this pass.
  int64_t buffered_records = 0;
  /// Bytes of pending/buffer state (plus the streamed stash) after the
  /// scan — the build's frontier-memory high-water contribution.
  int64_t buffer_bytes = 0;
  /// Nodes in the tree after the pass was applied.
  int64_t tree_nodes = 0;
  /// Wall seconds spent inside the attribute-major histogram kernels
  /// this pass, summed across shards (a subset of scan_seconds; 0 when
  /// the bin-code cache is disabled).
  double kernel_seconds = 0.0;
  /// Resident bytes of the bin-code cache (0 when disabled).
  int64_t code_cache_bytes = 0;
  /// Fresh bundles this pass derived by sibling subtraction
  /// (parent minus scanned sibling) instead of being accumulated.
  int64_t sibling_subtractions = 0;
  /// Distributed training only (0 otherwise): worker processes that
  /// scanned this pass, protocol bytes exchanged with them (frames in
  /// both directions), and wall seconds the coordinator spent merging
  /// their results in rank order.
  int64_t workers = 0;
  int64_t wire_bytes = 0;
  double merge_seconds = 0.0;
  /// Streaming training only (0 otherwise): resident bytes of quantile
  /// sketch state across the frontier after this pass.
  int64_t sketch_bytes = 0;
  /// Refit only (0 otherwise): drifted leaves whose subtrees this pass
  /// started regrowing.
  int64_t refit_leaves_regrown = 0;
};

/// Training observability hook. Builders that support it (all library
/// builders; CMP with full per-phase detail) invoke the callbacks from
/// the build thread, in pass order. Implementations must not retain
/// references past the callback. See `cmptool train --stats-json` for
/// the ready-made JSON surface.
class TrainObserver {
 public:
  virtual ~TrainObserver() = default;

  /// Called once before the first pass. `builder` is the algorithm's
  /// display name, `records` the training-set size.
  virtual void OnBuildStart(const std::string& builder, int64_t records) {
    (void)builder;
    (void)records;
  }

  /// Called after each completed pass.
  virtual void OnPass(const PassObservation& pass) { (void)pass; }

  /// Called once after construction (post-pruning) with the final
  /// counters.
  virtual void OnBuildEnd(const BuildStats& stats) { (void)stats; }
};

/// Ready-made observer that records every pass and renders the whole
/// training run as JSON (used by `cmptool train --stats-json`).
class TrainStatsCollector : public TrainObserver {
 public:
  void OnBuildStart(const std::string& builder, int64_t records) override;
  void OnPass(const PassObservation& pass) override;
  void OnBuildEnd(const BuildStats& stats) override;

  const std::vector<PassObservation>& passes() const { return passes_; }
  const BuildStats& final_stats() const { return final_stats_; }
  /// Kernel ISA ("scalar" | "sse2" | "avx2") active when the observed
  /// build started, captured in OnBuildStart.
  const std::string& kernel_isa() const { return kernel_isa_; }

  /// The run as a JSON object: builder, record count, per-pass metrics
  /// and the final BuildStats counters.
  std::string ToJson() const;

 private:
  std::string builder_;
  std::string kernel_isa_;
  int64_t records_ = 0;
  std::vector<PassObservation> passes_;
  BuildStats final_stats_;
  bool finished_ = false;
};

}  // namespace cmp

#endif  // CMP_TREE_OBSERVER_H_
