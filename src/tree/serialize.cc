#include "tree/serialize.h"

#include <algorithm>
#include <fstream>
#include <sstream>

namespace cmp {

namespace {

// Caps on header-declared counts: a corrupt or hostile count must fail
// the parse, not drive a giant allocation before any content check.
constexpr int kMaxAttrs = 1 << 20;
constexpr int kMaxClasses = 1 << 20;
constexpr int kMaxNodes = 1 << 28;
constexpr size_t kMaxClassCounts = 1 << 20;
constexpr int64_t kMaxForestTrees = 1 << 20;
constexpr int64_t kMaxForestTreeLines = int64_t{1} << 32;

void WriteDouble(std::ostringstream& os, double v) {
  os << std::hexfloat << v << std::defaultfloat;
}

bool ReadDouble(std::istringstream& is, double* v) {
  std::string tok;
  if (!(is >> tok)) return false;
  try {
    *v = std::strtod(tok.c_str(), nullptr);
  } catch (...) {
    return false;
  }
  return true;
}

}  // namespace

std::string SerializeTree(const DecisionTree& tree) {
  std::ostringstream os;
  const Schema& schema = tree.schema();
  os << "cmp-tree 1\n";
  os << "attrs " << schema.num_attrs() << '\n';
  for (AttrId a = 0; a < schema.num_attrs(); ++a) {
    const AttrInfo& info = schema.attr(a);
    os << (info.kind == AttrKind::kNumeric ? "num " : "cat ")
       << info.cardinality << ' ' << info.name << '\n';
  }
  os << "classes " << schema.num_classes() << '\n';
  for (ClassId c = 0; c < schema.num_classes(); ++c) {
    os << schema.class_name(c) << '\n';
  }
  os << "nodes " << tree.num_nodes() << '\n';
  for (NodeId id = 0; id < tree.num_nodes(); ++id) {
    const TreeNode& n = tree.node(id);
    if (n.is_leaf) {
      os << "leaf " << n.leaf_class;
    } else {
      switch (n.split.kind) {
        case Split::Kind::kNumeric:
          os << "num " << n.split.attr << ' ';
          WriteDouble(os, n.split.threshold);
          break;
        case Split::Kind::kCategorical: {
          os << "cat " << n.split.attr << ' ' << n.split.left_subset.size()
             << ' ';
          for (uint8_t b : n.split.left_subset) os << (b ? '1' : '0');
          break;
        }
        case Split::Kind::kLinear:
          os << "lin " << n.split.attr << ' ' << n.split.attr2 << ' ';
          WriteDouble(os, n.split.a);
          os << ' ';
          WriteDouble(os, n.split.b);
          os << ' ';
          WriteDouble(os, n.split.c);
          break;
      }
      os << ' ' << n.left << ' ' << n.right;
    }
    os << " d " << n.depth << " cc " << n.class_counts.size();
    for (int64_t cnt : n.class_counts) os << ' ' << cnt;
    os << '\n';
  }
  return os.str();
}

bool DeserializeTree(const std::string& text, DecisionTree* out) {
  std::istringstream lines(text);
  std::string line;
  auto next_line = [&](std::istringstream* ls) {
    if (!std::getline(lines, line)) return false;
    ls->clear();
    ls->str(line);
    return true;
  };

  std::istringstream ls;
  if (!next_line(&ls)) return false;
  std::string tag;
  int version = 0;
  if (!(ls >> tag >> version) || tag != "cmp-tree" || version != 1) {
    return false;
  }

  if (!next_line(&ls)) return false;
  int num_attrs = 0;
  if (!(ls >> tag >> num_attrs) || tag != "attrs" || num_attrs < 0 ||
      num_attrs > kMaxAttrs) {
    return false;
  }
  std::vector<AttrInfo> attrs(num_attrs);
  for (auto& info : attrs) {
    if (!next_line(&ls)) return false;
    std::string kind;
    if (!(ls >> kind >> info.cardinality)) return false;
    if (kind == "num") {
      info.kind = AttrKind::kNumeric;
    } else if (kind == "cat") {
      info.kind = AttrKind::kCategorical;
    } else {
      return false;
    }
    std::getline(ls, info.name);
    if (!info.name.empty() && info.name.front() == ' ') {
      info.name.erase(0, 1);
    }
  }

  if (!next_line(&ls)) return false;
  int num_classes = 0;
  if (!(ls >> tag >> num_classes) || tag != "classes" || num_classes <= 0 ||
      num_classes > kMaxClasses) {
    return false;
  }
  std::vector<std::string> class_names(num_classes);
  for (auto& name : class_names) {
    if (!std::getline(lines, name)) return false;
  }

  if (!next_line(&ls)) return false;
  int num_nodes = 0;
  if (!(ls >> tag >> num_nodes) || tag != "nodes" || num_nodes < 0 ||
      num_nodes > kMaxNodes) {
    return false;
  }

  DecisionTree tree(Schema(std::move(attrs), std::move(class_names)));
  for (int i = 0; i < num_nodes; ++i) {
    if (!next_line(&ls)) return false;
    TreeNode n;
    std::string kind;
    if (!(ls >> kind)) return false;
    if (kind == "leaf") {
      if (!(ls >> n.leaf_class)) return false;
      n.is_leaf = true;
    } else {
      n.is_leaf = false;
      if (kind == "num") {
        n.split.kind = Split::Kind::kNumeric;
        if (!(ls >> n.split.attr)) return false;
        if (!ReadDouble(ls, &n.split.threshold)) return false;
      } else if (kind == "cat") {
        n.split.kind = Split::Kind::kCategorical;
        size_t card = 0;
        std::string bits;
        if (!(ls >> n.split.attr >> card >> bits)) return false;
        if (bits.size() != card) return false;
        n.split.left_subset.resize(card);
        for (size_t v = 0; v < card; ++v) {
          n.split.left_subset[v] = bits[v] == '1' ? 1 : 0;
        }
      } else if (kind == "lin") {
        n.split.kind = Split::Kind::kLinear;
        if (!(ls >> n.split.attr >> n.split.attr2)) return false;
        if (!ReadDouble(ls, &n.split.a) || !ReadDouble(ls, &n.split.b) ||
            !ReadDouble(ls, &n.split.c)) {
          return false;
        }
      } else {
        return false;
      }
      if (!(ls >> n.left >> n.right)) return false;
    }
    std::string dtag;
    std::string cctag;
    size_t cc = 0;
    if (!(ls >> dtag >> n.depth >> cctag >> cc) || dtag != "d" ||
        cctag != "cc" || n.depth < 0 || cc > kMaxClassCounts) {
      return false;
    }
    n.class_counts.resize(cc);
    for (auto& cnt : n.class_counts) {
      if (!(ls >> cnt)) return false;
    }
    tree.AddNode(std::move(n));
  }

  // A node count larger than the node list is caught above (missing
  // lines); a smaller one would silently truncate the tree, so reject
  // any trailing non-empty lines too.
  while (std::getline(lines, line)) {
    if (!line.empty()) return false;
  }

  // Validate the finished structure so a malformed file yields a clean
  // error here instead of out-of-range indexing during Classify:
  // children must point strictly forward (no cycles, no dangling ids),
  // split attributes must exist with the right kind, and leaf classes
  // must name real classes.
  const Schema& schema = tree.schema();
  for (NodeId id = 0; id < tree.num_nodes(); ++id) {
    const TreeNode& n = tree.node(id);
    if (n.is_leaf) {
      if (n.leaf_class < 0 || n.leaf_class >= schema.num_classes()) {
        return false;
      }
      continue;
    }
    if (n.left <= id || n.left >= tree.num_nodes() || n.right <= id ||
        n.right >= tree.num_nodes()) {
      return false;
    }
    if (n.split.attr < 0 || n.split.attr >= schema.num_attrs()) return false;
    switch (n.split.kind) {
      case Split::Kind::kNumeric:
        if (!schema.is_numeric(n.split.attr)) return false;
        break;
      case Split::Kind::kCategorical: {
        if (schema.is_numeric(n.split.attr)) return false;
        const size_t card = static_cast<size_t>(
            std::max<int32_t>(schema.attr(n.split.attr).cardinality, 0));
        if (n.split.left_subset.size() != card) return false;
        break;
      }
      case Split::Kind::kLinear:
        if (!schema.is_numeric(n.split.attr)) return false;
        if (n.split.attr2 < 0 || n.split.attr2 >= schema.num_attrs() ||
            !schema.is_numeric(n.split.attr2)) {
          return false;
        }
        break;
    }
  }

  *out = std::move(tree);
  return true;
}

bool SaveTree(const DecisionTree& tree, const std::string& path) {
  std::ofstream os(path, std::ios::trunc);
  if (!os.is_open()) return false;
  os << SerializeTree(tree);
  return os.good();
}

bool LoadTree(const std::string& path, DecisionTree* out) {
  std::ifstream is(path);
  if (!is.is_open()) return false;
  std::ostringstream buffer;
  buffer << is.rdbuf();
  return DeserializeTree(buffer.str(), out);
}

std::string SerializeForest(const std::vector<DecisionTree>& trees) {
  std::ostringstream os;
  os << "cmp-forest 1\n";
  os << "trees " << trees.size() << '\n';
  for (const DecisionTree& tree : trees) {
    const std::string text = SerializeTree(tree);
    os << "tree " << std::count(text.begin(), text.end(), '\n') << '\n'
       << text;
  }
  return os.str();
}

bool DeserializeForest(const std::string& text,
                       std::vector<DecisionTree>* out) {
  std::istringstream lines(text);
  std::string line;
  std::string tag;
  int version = 0;
  {
    if (!std::getline(lines, line)) return false;
    std::istringstream ls(line);
    if (!(ls >> tag >> version) || tag != "cmp-forest" || version != 1) {
      return false;
    }
  }
  int64_t num_trees = 0;
  {
    if (!std::getline(lines, line)) return false;
    std::istringstream ls(line);
    if (!(ls >> tag >> num_trees) || tag != "trees" || num_trees <= 0 ||
        num_trees > kMaxForestTrees) {
      return false;
    }
  }
  std::vector<DecisionTree> trees;
  trees.reserve(static_cast<size_t>(num_trees));
  for (int64_t t = 0; t < num_trees; ++t) {
    int64_t num_lines = 0;
    if (!std::getline(lines, line)) return false;
    std::istringstream ls(line);
    if (!(ls >> tag >> num_lines) || tag != "tree" || num_lines <= 0 ||
        num_lines > kMaxForestTreeLines) {
      return false;
    }
    std::string block;
    for (int64_t i = 0; i < num_lines; ++i) {
      if (!std::getline(lines, line)) return false;
      block += line;
      block += '\n';
    }
    DecisionTree tree;
    if (!DeserializeTree(block, &tree)) return false;
    trees.push_back(std::move(tree));
  }
  while (std::getline(lines, line)) {
    if (!line.empty()) return false;
  }
  *out = std::move(trees);
  return true;
}

bool SaveForest(const std::vector<DecisionTree>& trees,
                const std::string& path) {
  if (trees.empty()) return false;
  std::ofstream os(path, std::ios::trunc);
  if (!os.is_open()) return false;
  os << SerializeForest(trees);
  return os.good();
}

bool LoadForest(const std::string& path, std::vector<DecisionTree>* out) {
  std::ifstream is(path);
  if (!is.is_open()) return false;
  std::ostringstream buffer;
  buffer << is.rdbuf();
  return DeserializeForest(buffer.str(), out);
}

bool LoadTrees(const std::string& path, std::vector<DecisionTree>* out) {
  std::ifstream is(path);
  if (!is.is_open()) return false;
  std::ostringstream buffer;
  buffer << is.rdbuf();
  const std::string text = buffer.str();
  if (text.rfind("cmp-forest ", 0) == 0) {
    return DeserializeForest(text, out);
  }
  DecisionTree tree;
  if (!DeserializeTree(text, &tree)) return false;
  out->clear();
  out->push_back(std::move(tree));
  return true;
}

}  // namespace cmp
