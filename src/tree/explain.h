#ifndef CMP_TREE_EXPLAIN_H_
#define CMP_TREE_EXPLAIN_H_

#include <string>
#include <vector>

#include "common/dataset.h"
#include "tree/tree.h"

namespace cmp {

/// One hop of a record's route through the tree.
struct DecisionStep {
  NodeId node = kInvalidNode;
  /// The test at this node, rendered ("salary <= 65000").
  std::string test;
  /// Whether the record satisfied the test (went left).
  bool went_left = false;
};

/// Explanation of a single classification: the tests on the root-to-leaf
/// path plus the leaf's prediction and class distribution.
struct Explanation {
  std::vector<DecisionStep> path;
  NodeId leaf = kInvalidNode;
  ClassId predicted = kInvalidClass;
  std::vector<int64_t> leaf_counts;

  /// Multi-line rendering, one test per line.
  std::string ToString(const Schema& schema) const;
};

/// Traces record `r` of `ds` through `tree`.
Explanation Explain(const DecisionTree& tree, const Dataset& ds, RecordId r);

/// Writes the tree in Graphviz DOT format (view with `dot -Tsvg`).
/// Internal nodes show their split test; leaves show the class name and
/// training distribution.
std::string ToDot(const DecisionTree& tree);

}  // namespace cmp

#endif  // CMP_TREE_EXPLAIN_H_
