// The TreeBuilder registry (declared in tree/builder.h): one factory per
// algorithm, keyed by the lowercase names cmptool and the benches use.
// Registration is centralized here instead of static initializers in
// each algorithm library — with static archives the linker would happily
// drop a translation unit whose only purpose is self-registration, so
// the registry seeds itself on first use.

#include <algorithm>
#include <map>
#include <mutex>

#include "boost/boost.h"
#include "clouds/clouds.h"
#include "cmp/cmp.h"
#include "exact/exact.h"
#include "rainforest/rainforest.h"
#include "sampling/windowing.h"
#include "sliq/sliq.h"
#include "sprint/sprint.h"
#include "stream/stream_train.h"
#include "tree/builder.h"

namespace cmp {

namespace {

std::map<std::string, TreeBuilderFactory>& Factories() {
  static std::map<std::string, TreeBuilderFactory> factories;
  return factories;
}

std::mutex& RegistryMutex() {
  static std::mutex mutex;
  return mutex;
}

std::unique_ptr<TreeBuilder> MakeCmpVariant(CmpOptions options,
                                            const BuilderConfig& config) {
  options.base = config.base;
  options.intervals = config.intervals;
  return std::make_unique<CmpBuilder>(options);
}

// Called under RegistryMutex(). Seeds the library's own builders once.
void EnsureDefaults() {
  std::map<std::string, TreeBuilderFactory>& factories = Factories();
  if (!factories.empty()) return;
  factories["cmp"] = [](const BuilderConfig& c) {
    return MakeCmpVariant(CmpFullOptions(), c);
  };
  factories["cmp-b"] = [](const BuilderConfig& c) {
    return MakeCmpVariant(CmpBOptions(), c);
  };
  factories["cmp-s"] = [](const BuilderConfig& c) {
    return MakeCmpVariant(CmpSOptions(), c);
  };
  factories["cmp-stream"] = [](const BuilderConfig& c) {
    StreamOptions o;
    o.base = c.base;
    o.intervals = c.intervals;
    return std::make_unique<StreamBuilder>(o);
  };
  factories["boost"] = [](const BuilderConfig& c) {
    BoostOptions o;
    o.base = c.base;
    o.intervals = c.intervals;
    o.boost = c.boost;
    return std::make_unique<BoostBuilder>(o);
  };
  factories["clouds"] = [](const BuilderConfig& c) {
    CloudsOptions o;
    o.base = c.base;
    o.intervals = c.intervals;
    return std::make_unique<CloudsBuilder>(o);
  };
  factories["sliq"] = [](const BuilderConfig& c) {
    SliqOptions o;
    o.base = c.base;
    return std::make_unique<SliqBuilder>(o);
  };
  factories["sprint"] = [](const BuilderConfig& c) {
    SprintOptions o;
    o.base = c.base;
    return std::make_unique<SprintBuilder>(o);
  };
  factories["rainforest"] = [](const BuilderConfig& c) {
    RainForestOptions o;
    o.base = c.base;
    return std::make_unique<RainForestBuilder>(o);
  };
  factories["exact"] = [](const BuilderConfig& c) {
    return std::make_unique<ExactBuilder>(c.base);
  };
  factories["windowing"] = [](const BuilderConfig& c) {
    return std::make_unique<WindowingBuilder>(
        std::make_unique<ExactBuilder>(c.base));
  };
  factories["sampled"] = [](const BuilderConfig& c) {
    return std::make_unique<SampledBuilder>(
        std::make_unique<ExactBuilder>(c.base), 0.1);
  };
}

}  // namespace

void RegisterTreeBuilder(const std::string& name,
                         TreeBuilderFactory factory) {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  EnsureDefaults();
  Factories()[name] = std::move(factory);
}

std::unique_ptr<TreeBuilder> MakeTreeBuilder(const std::string& name,
                                             const BuilderConfig& config) {
  TreeBuilderFactory factory;
  {
    std::lock_guard<std::mutex> lock(RegistryMutex());
    EnsureDefaults();
    const auto it = Factories().find(name);
    if (it == Factories().end()) return nullptr;
    factory = it->second;
  }
  return factory(config);
}

std::vector<std::string> RegisteredTreeBuilders() {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  EnsureDefaults();
  std::vector<std::string> names;
  names.reserve(Factories().size());
  for (const auto& [name, factory] : Factories()) names.push_back(name);
  return names;  // std::map iterates sorted ascending
}

}  // namespace cmp
