#ifndef CMP_CMP_CMP_H_
#define CMP_CMP_CMP_H_

#include <string>

#include "cmp/options.h"
#include "tree/builder.h"

namespace cmp {

/// The CMP family of decision-tree builders (Wang & Zaniolo, ICDE 2000).
///
/// All three variants share the same skeleton: numeric attributes are
/// discretized once into equal-depth intervals; per node, class
/// histograms over those intervals yield the exact gini at every interval
/// boundary plus a gradient-based lower bound per interval; the few
/// intervals that could beat the boundary minimum stay "alive". Unlike
/// CLOUDS, the exact split point inside the alive intervals is NOT found
/// with an extra pass: the node is preliminarily split around the alive
/// intervals, and during the NEXT scan (which builds the children's
/// histograms anyway) the records falling into alive intervals are set
/// aside in a buffer, sorted, and used to fix the exact split point —
/// after which the preliminary subnodes are merged into the final
/// children and the buffered records flushed into their histograms.
///
/// CMP-B replaces the per-attribute histograms with bivariate matrices
/// sharing a predicted X axis; when a split lands on the X axis the
/// children's matrices are sub-matrices of the parent's, so the children
/// can be split in the same round (two or more tree levels per scan).
/// CMP (full) additionally searches the matrices for linear-combination
/// splits a*x + b*y <= c.
class ThreadPool;
class BlockSource;

/// Construction is parallelized over `options.base.num_threads` workers
/// (histogram accumulation sharded per thread and merged in attribute
/// order, per-attribute gini scans fanned out, frontier nodes of one
/// level analyzed concurrently) with a hard determinism contract: the
/// built tree is bit-identical for every thread count. An optional
/// shared ThreadPool avoids oversubscription when training and inference
/// run in one process; when none is injected, Build creates its own.
class CmpBuilder : public TreeBuilder {
 public:
  explicit CmpBuilder(CmpOptions options = {}, ThreadPool* pool = nullptr)
      : options_(options), pool_(pool) {}

  BuildResult Build(const Dataset& train) override;

  /// Out-of-core build: trains from `source` block by block, never
  /// holding more than one prefetch window of records in memory (plus
  /// the per-round stash of buffered/collected records — the records
  /// the paper's algorithm itself sets aside). The resulting tree is
  /// byte-identical to Build() on the same records, for every block
  /// size and thread count. BuildStats.bytes_read reports bytes
  /// actually read from the source (real I/O, not the disk simulation).
  /// Limitation: options.all_pairs_root needs random access to whole
  /// columns in pairs and is ignored on this path. `prefetch` toggles
  /// double-buffered async read-ahead on the source (the tree is
  /// identical either way; only wall time changes).
  BuildResult BuildStreamed(BlockSource& source, bool prefetch = true);

  std::string name() const override;

 private:
  CmpOptions options_;
  ThreadPool* pool_;  // borrowed; may be null (Build makes a local pool)
};

/// Convenience factories for the three paper variants.
CmpOptions CmpSOptions();
CmpOptions CmpBOptions();
CmpOptions CmpFullOptions();

}  // namespace cmp

#endif  // CMP_CMP_CMP_H_
