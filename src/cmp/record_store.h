#ifndef CMP_CMP_RECORD_STORE_H_
#define CMP_CMP_RECORD_STORE_H_

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/dataset.h"
#include "io/block_source.h"

namespace cmp {

/// Record stores adapt CmpBuild's per-record reads (numeric /
/// categorical / label by GLOBAL record id) to wherever the bytes
/// actually live. The builder is templated over the store: the
/// in-memory path keeps its direct column indexing, while the
/// out-of-core path serves reads from the currently resident block —
/// with the few records that must outlive block eviction (pending-
/// buffer and collect records, re-read during the resolve phase)
/// copied into a per-round stash while their block is still resident.

/// Direct view over an in-memory Dataset.
class InMemoryStore {
 public:
  static constexpr bool kStreaming = false;

  explicit InMemoryStore(const Dataset& ds) : ds_(ds) {}

  const Schema& schema() const { return ds_.schema(); }
  int64_t num_records() const { return ds_.num_records(); }
  double numeric(AttrId a, RecordId r) const { return ds_.numeric(a, r); }
  int32_t categorical(AttrId a, RecordId r) const {
    return ds_.categorical(a, r);
  }
  ClassId label(RecordId r) const { return ds_.label(r); }

  /// Non-null: exact subtree finishing and all-pairs discovery can use
  /// the dataset directly, with no materialization.
  const Dataset* dataset() const { return &ds_; }

  void SetBlock(const BlockView& view) { (void)view; }
  void ClearBlock() {}

 private:
  const Dataset& ds_;
};

/// Bounded-memory store for a streamed build. Reads inside the resident
/// block window hit the block's columns; reads outside it hit the stash
/// of explicitly retained records. Block columns are read concurrently
/// by scan shards; Stash() must only be called between blocks (no
/// concurrent readers), and the stash is cleared once per round after
/// the resolve phase has consumed it.
class StreamStore {
 public:
  static constexpr bool kStreaming = true;

  StreamStore(const Schema& schema, int64_t num_records)
      : schema_(schema),
        num_records_(num_records),
        numeric_stash_(schema.num_attrs()),
        cat_stash_(schema.num_attrs()) {}

  const Schema& schema() const { return schema_; }
  int64_t num_records() const { return num_records_; }
  const Dataset* dataset() const { return nullptr; }

  void SetBlock(const BlockView& view) { view_ = &view; }
  void ClearBlock() { view_ = nullptr; }

  double numeric(AttrId a, RecordId r) const {
    const int64_t i = BlockIndex(r);
    if (i >= 0) return view_->numeric[a][i];
    return numeric_stash_[a][StashIndex(r)];
  }
  int32_t categorical(AttrId a, RecordId r) const {
    const int64_t i = BlockIndex(r);
    if (i >= 0) return view_->categorical[a][i];
    return cat_stash_[a][StashIndex(r)];
  }
  ClassId label(RecordId r) const {
    const int64_t i = BlockIndex(r);
    if (i >= 0) return view_->labels[i];
    return label_stash_[StashIndex(r)];
  }

  /// Copies `rids` (all inside the resident block) into the stash so
  /// they stay readable after the block is evicted. Already-stashed
  /// records are skipped.
  void Stash(const std::vector<RecordId>& rids) {
    for (RecordId r : rids) {
      const int64_t i = BlockIndex(r);
      assert(i >= 0);
      const auto [it, inserted] =
          stash_index_.emplace(r, static_cast<int64_t>(label_stash_.size()));
      (void)it;
      if (!inserted) continue;
      for (AttrId a = 0; a < schema_.num_attrs(); ++a) {
        if (schema_.is_numeric(a)) {
          numeric_stash_[a].push_back(view_->numeric[a][i]);
        } else {
          cat_stash_[a].push_back(view_->categorical[a][i]);
        }
      }
      label_stash_.push_back(view_->labels[i]);
    }
  }

  /// Appends one record directly into the stash — the distributed
  /// coordinator stashes rows shipped by workers, where no resident
  /// block exists to copy from. `nums` / `cats` are indexed by AttrId
  /// (only the matching-kind entry of each attribute is read). An
  /// already-stashed rid is skipped.
  void StashRecord(RecordId r, const std::vector<double>& nums,
                   const std::vector<int32_t>& cats, ClassId label) {
    const auto [it, inserted] =
        stash_index_.emplace(r, static_cast<int64_t>(label_stash_.size()));
    (void)it;
    if (!inserted) return;
    for (AttrId a = 0; a < schema_.num_attrs(); ++a) {
      if (schema_.is_numeric(a)) {
        numeric_stash_[a].push_back(nums[a]);
      } else {
        cat_stash_[a].push_back(cats[a]);
      }
    }
    label_stash_.push_back(label);
  }

  /// The stashed record ids in ascending order — the deterministic
  /// iteration a worker uses to serialize its stash onto the wire.
  std::vector<RecordId> StashedRids() const {
    std::vector<RecordId> rids;
    rids.reserve(stash_index_.size());
    for (const auto& [r, row] : stash_index_) rids.push_back(r);
    std::sort(rids.begin(), rids.end());
    return rids;
  }

  void ClearStash() {
    stash_index_.clear();
    for (auto& col : numeric_stash_) col.clear();
    for (auto& col : cat_stash_) col.clear();
    label_stash_.clear();
  }

  int64_t stash_records() const {
    return static_cast<int64_t>(label_stash_.size());
  }
  int64_t stash_bytes() const {
    return stash_records() * schema_.RecordBytes();
  }

  /// Materializes the stashed records `rids` as a Dataset whose record
  /// i is global record rids[i] (callers pass rids in ascending order
  /// so the result reproduces the global record order).
  Dataset Materialize(const std::vector<RecordId>& rids) const {
    Dataset out(schema_);
    out.Reserve(static_cast<int64_t>(rids.size()));
    std::vector<double> nums;
    std::vector<int32_t> cats;
    for (RecordId r : rids) {
      nums.clear();
      cats.clear();
      const int64_t row = StashIndex(r);
      for (AttrId a = 0; a < schema_.num_attrs(); ++a) {
        if (schema_.is_numeric(a)) {
          nums.push_back(numeric_stash_[a][row]);
        } else {
          cats.push_back(cat_stash_[a][row]);
        }
      }
      out.Append(nums, cats, label_stash_[row]);
    }
    return out;
  }

 private:
  // Local index of `r` in the resident block, or -1 when not resident.
  int64_t BlockIndex(RecordId r) const {
    if (view_ == nullptr) return -1;
    const int64_t i = r - view_->begin;
    return (i >= 0 && i < view_->count) ? i : -1;
  }

  int64_t StashIndex(RecordId r) const {
    const auto it = stash_index_.find(r);
    assert(it != stash_index_.end());
    return it->second;
  }

  const Schema& schema_;
  int64_t num_records_ = 0;
  const BlockView* view_ = nullptr;  // borrowed; owned by the scan loop

  // Columnar stash, rows indexed via stash_index_ (rid -> row).
  std::unordered_map<RecordId, int64_t> stash_index_;
  std::vector<std::vector<double>> numeric_stash_;
  std::vector<std::vector<int32_t>> cat_stash_;
  std::vector<ClassId> label_stash_;
};

}  // namespace cmp

#endif  // CMP_CMP_RECORD_STORE_H_
