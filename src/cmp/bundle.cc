#include "cmp/bundle.h"

#include <cassert>

namespace cmp {

namespace {

int YRows(const Schema& schema, const std::vector<IntervalGrid>& grids,
          AttrId a) {
  return schema.is_numeric(a) ? grids[a].num_intervals()
                              : schema.attr(a).cardinality;
}

}  // namespace

HistBundle HistBundle::MakeUnivariate(const Schema& schema,
                                      const std::vector<IntervalGrid>& grids) {
  HistBundle b;
  b.bivariate_ = false;
  b.schema_ = &schema;
  b.hists_.resize(schema.num_attrs());
  for (AttrId a = 0; a < schema.num_attrs(); ++a) {
    b.hists_[a] = Histogram1D(YRows(schema, grids, a), schema.num_classes());
  }
  return b;
}

HistBundle HistBundle::MakeBivariate(const Schema& schema,
                                     const std::vector<IntervalGrid>& grids,
                                     AttrId x_attr, int x_lo, int x_hi) {
  assert(schema.is_numeric(x_attr));
  HistBundle b;
  b.bivariate_ = true;
  b.schema_ = &schema;
  b.x_attr_ = x_attr;
  b.x_lo_ = x_lo;
  b.x_hi_ = x_hi;
  b.matrices_.resize(schema.num_attrs());
  for (AttrId a = 0; a < schema.num_attrs(); ++a) {
    if (a == x_attr) continue;
    b.matrices_[a] = HistogramMatrix(x_hi - x_lo, YRows(schema, grids, a),
                                     schema.num_classes());
  }
  return b;
}

HistBundle HistBundle::DeriveXRange(int x_lo, int x_hi, int full_lo,
                                    int full_hi) const {
  assert(bivariate_);
  assert(x_lo_ <= x_lo && x_hi <= x_hi_);
  assert(x_lo <= full_lo && full_hi <= x_hi);
  HistBundle b;
  b.bivariate_ = true;
  b.schema_ = schema_;
  b.x_attr_ = x_attr_;
  b.x_lo_ = x_lo;
  b.x_hi_ = x_hi;
  b.matrices_.resize(matrices_.size());
  const int nc = schema_->num_classes();
  for (AttrId a = 0; a < static_cast<AttrId>(matrices_.size()); ++a) {
    if (a == x_attr_) continue;
    const HistogramMatrix& src = matrices_[a];
    HistogramMatrix dst(x_hi - x_lo, src.y_intervals(), nc);
    for (int gx = full_lo; gx < full_hi; ++gx) {
      const int sx = gx - x_lo_;  // column in the parent matrix
      const int dx = gx - x_lo;   // column in the child matrix
      for (int y = 0; y < src.y_intervals(); ++y) {
        const int64_t* cell = src.cell(sx, y);
        for (int c = 0; c < nc; ++c) {
          if (cell[c] != 0) dst.Add(dx, y, c, cell[c]);
        }
      }
    }
    b.matrices_[a] = std::move(dst);
  }
  return b;
}

HistBundle HistBundle::CloneEmptyShape() const {
  HistBundle b;
  b.bivariate_ = bivariate_;
  b.x_attr_ = x_attr_;
  b.x_lo_ = x_lo_;
  b.x_hi_ = x_hi_;
  b.schema_ = schema_;
  b.hists_.resize(hists_.size());
  for (size_t i = 0; i < hists_.size(); ++i) {
    b.hists_[i] =
        Histogram1D(hists_[i].num_intervals(), hists_[i].num_classes());
  }
  b.matrices_.resize(matrices_.size());
  for (size_t i = 0; i < matrices_.size(); ++i) {
    if (static_cast<AttrId>(i) == x_attr_) continue;
    const HistogramMatrix& m = matrices_[i];
    b.matrices_[i] =
        HistogramMatrix(m.x_intervals(), m.y_intervals(), m.num_classes());
  }
  return b;
}

void HistBundle::MergeSameShape(const HistBundle& other) {
  assert(bivariate_ == other.bivariate_ && x_attr_ == other.x_attr_ &&
         x_lo_ == other.x_lo_ && x_hi_ == other.x_hi_);
  for (size_t i = 0; i < hists_.size(); ++i) hists_[i].Merge(other.hists_[i]);
  for (size_t i = 0; i < matrices_.size(); ++i) {
    if (static_cast<AttrId>(i) == x_attr_) continue;
    matrices_[i].Merge(other.matrices_[i]);
  }
}

void HistBundle::SubtractSameShape(const HistBundle& other) {
  assert(SameShapeAs(other));
  for (size_t i = 0; i < hists_.size(); ++i) {
    hists_[i].Subtract(other.hists_[i]);
  }
  for (size_t i = 0; i < matrices_.size(); ++i) {
    if (static_cast<AttrId>(i) == x_attr_) continue;
    matrices_[i].Subtract(other.matrices_[i]);
  }
}

void HistBundle::AccumulateBatch(const BinCodeCache& codes,
                                 const RecordId* rids, size_t n,
                                 KernelScratch* scratch) {
  if (n == 0) return;
  GatherLabels(codes.labels(), rids, n, &scratch->labels);
  const ClassId* batch_labels = scratch->labels.data();
  const Schema& schema = *schema_;
  const int nc = schema.num_classes();
  if (!bivariate_) {
    for (AttrId a = 0; a < schema.num_attrs(); ++a) {
      AccumulateHist1D(codes.view(a), batch_labels, rids, n, nc,
                       hists_[a].data());
    }
    return;
  }
  GatherXRows(codes.view(x_attr_), x_lo_, rids, n, &scratch->xrows);
  const int32_t* xrows = scratch->xrows.data();
  for (AttrId a = 0; a < schema.num_attrs(); ++a) {
    if (a == x_attr_) continue;
    HistogramMatrix& m = matrices_[a];
    AccumulateHist2D(xrows, codes.view(a), batch_labels, rids, n,
                     m.y_intervals(), nc, m.data());
  }
}

Histogram1D HistBundle::HistFor(AttrId a) const {
  if (!bivariate_) return hists_[a];
  if (a == x_attr_) {
    // Any matrix's X marginal works; pick the first existing one.
    for (AttrId other = 0; other < static_cast<AttrId>(matrices_.size());
         ++other) {
      if (other != x_attr_) return matrices_[other].MarginalX();
    }
    return Histogram1D(x_hi_ - x_lo_, schema_->num_classes());
  }
  return matrices_[a].MarginalY();
}

std::vector<int64_t> HistBundle::ClassTotals() const {
  if (!bivariate_) {
    if (hists_.empty()) return {};
    return hists_[0].ClassTotals();
  }
  for (AttrId a = 0; a < static_cast<AttrId>(matrices_.size()); ++a) {
    if (a != x_attr_) return matrices_[a].ClassTotals();
  }
  return {};
}

int64_t HistBundle::MemoryBytes() const {
  int64_t bytes = 0;
  for (const Histogram1D& h : hists_) bytes += h.MemoryBytes();
  for (const HistogramMatrix& m : matrices_) bytes += m.MemoryBytes();
  return bytes;
}

}  // namespace cmp
