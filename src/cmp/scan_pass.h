#ifndef CMP_CMP_SCAN_PASS_H_
#define CMP_CMP_SCAN_PASS_H_

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "cmp/frontier.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "hist/bin_codes.h"
#include "hist/grids.h"
#include "io/block_source.h"
#include "io/scan.h"
#include "tree/observer.h"
#include "tree/tree.h"

namespace cmp {

/// Scan execution of the CMP build pipeline: one full pass over the
/// training records, routing every record through the (read-only) tree
/// into exactly one frontier sink — a fresh histogram bundle, a pending
/// split, or a collect list. Handles the sharded-parallel and blocked-
/// streaming mechanics (per-shard empty mirrors merged in shard order,
/// per-block stash of records that must outlive eviction) behind a
/// single Run() call; what the sinks MEAN is the business of the
/// frontier and split-plan layers.

/// What a pass scanner learns once the driver has built its grids and
/// seeded its tree — everything a remote transport must broadcast to
/// workers before the first pass.
struct PassScanContext {
  const std::vector<IntervalGrid>* grids = nullptr;
  const DecisionTree* tree = nullptr;
  int64_t num_records = 0;
  // The build's I/O tracker; a remote scanner charges the bytes its
  // workers report reading so streamed-build accounting stays honest.
  ScanTracker* tracker = nullptr;
};

/// The transport seam of the build driver: one interface between "run a
/// scan pass over the frontier" and wherever the records actually are.
/// The local ScanPass below implements it over a record store; the
/// distributed coordinator (src/dist/) implements it by shipping the
/// frontier skeleton to worker processes and merging their histogram
/// bundles back in rank order. Either way, RunPass must leave `work` in
/// the byte-identical state a serial single-process scan would produce.
class PassScanner {
 public:
  virtual ~PassScanner() = default;

  /// Called once, after the driver has built grids and class counts but
  /// before the first pass.
  virtual void Prepare(const PassScanContext& ctx) { (void)ctx; }

  /// Runs one full pass, filling `work`'s bundles, pending buffers and
  /// collect lists.
  virtual void RunPass(FrontierQueues& work, PassObservation* po) = 0;
};

/// node id -> work-list slot maps for one pass (-1: not in that list).
struct SlotMaps {
  std::vector<int> fresh;
  std::vector<int> pending;
  std::vector<int> collect;
};

/// Builds the slot maps for a pass over a tree with `num_nodes` nodes.
SlotMaps BuildSlotMaps(int num_nodes, const FrontierQueues& work);

/// Records batched per fresh sink before an attribute-major kernel
/// flush: large enough to amortize the per-batch label/X-row gathers,
/// small enough that batch rid lists stay cache-resident.
constexpr size_t kScanBatchRecords = 512;

template <class Store>
class ScanPass : public PassScanner {
 public:
  /// All references are borrowed and must outlive the pass. `tree` is
  /// read-only during Run (records descend through splits resolved since
  /// the last scan); `nid` is the per-record frontier-node assignment
  /// and is advanced in place. `codes` (nullable) is the build's
  /// bin-code cache: when present and enabled, fresh bundles accumulate
  /// through the attribute-major batch kernels and pending routing reads
  /// cached interval indices — byte-identical counts, fraction of the
  /// work. `scan_shards` caps the shard count (0 = auto: pool
  /// parallelism, additionally capped at the hardware thread count, so a
  /// pool oversubscribed on a small machine does not pay mirror-clone
  /// and merge overhead for shards that cannot run concurrently anyway).
  ScanPass(Store& store, BlockSource& source,
           const std::vector<IntervalGrid>& grids, const DecisionTree& tree,
           std::vector<NodeId>& nid, ThreadPool* pool, ScanTracker* tracker,
           const BinCodeCache* codes = nullptr, int scan_shards = 0)
      : store_(store),
        source_(source),
        schema_(store.schema()),
        grids_(grids),
        tree_(tree),
        nid_(nid),
        pool_(pool),
        tracker_(tracker),
        codes_(codes != nullptr && codes->enabled() ? codes : nullptr),
        scan_shards_(scan_shards) {}

  /// Distributed-training workers scan with this disabled: a worker's
  /// sibling-derived bundles are empty placeholders (the coordinator
  /// holds the parent counts and subtracts ONCE after the rank-order
  /// merge), so subtracting locally would corrupt them.
  void set_apply_sibling_subtraction(bool v) {
    apply_sibling_subtraction_ = v;
  }

  void RunPass(FrontierQueues& work, PassObservation* po) override {
    Run(work, po);
  }

  /// Runs one full pass, filling `work`'s bundles, pending buffers and
  /// collect lists. On return the accumulated state is byte-for-byte
  /// what a serial single-block scan would have produced, for any thread
  /// count and block size — with or without the bin-code cache, and with
  /// or without sibling subtraction. Fills `po`'s kernel/cache/
  /// subtraction counters when non-null. Throws on a mid-pass source
  /// failure.
  void Run(FrontierQueues& work, PassObservation* po = nullptr) {
    const int64_t n = source_.num_records();
    tracker_->ChargeScan(n, schema_);
    tracker_->ChargeWrite(n * static_cast<int64_t>(sizeof(NodeId)));

    const int num_nodes = tree_.num_nodes();
    const SlotMaps slots = BuildSlotMaps(num_nodes, work);

    {
      int64_t mem = GridsMemoryBytes(grids_) +
                    n * static_cast<int64_t>(sizeof(NodeId)) +
                    source_.resident_bytes();
      // The code cache is resident for the whole build (it is the point:
      // 1-2 bytes/value kept hot across passes), so it is part of every
      // pass's high-water mark.
      if (codes_ != nullptr) mem += codes_->MemoryBytes();
      for (const FreshWork& w : work.fresh) mem += w.bundle.MemoryBytes();
      for (const PendingWork& w : work.pending) {
        mem += w.pending->MemoryBytes();
      }
      tracker_->NotePeakMemory(mem);
    }

    // The scan routes each record through the (read-only) tree and
    // accumulates it into exactly one sink. Shard 0 scans directly into
    // the master work lists; every other shard gets a private empty
    // mirror of each sink, scans its own contiguous record range, and is
    // merged back in shard order below. Integer count merges are exact
    // and buffer/rid concatenation in shard order reproduces the serial
    // ascending-record order, so the post-merge state — and therefore
    // the tree — is bit-identical for any shard count.
    std::vector<HistBundle*> fresh_sink(work.fresh.size());
    for (size_t i = 0; i < work.fresh.size(); ++i) {
      fresh_sink[i] = &work.fresh[i].bundle;
    }
    std::vector<Pending*> pending_sink(work.pending.size());
    for (size_t i = 0; i < work.pending.size(); ++i) {
      pending_sink[i] = work.pending[i].pending.get();
    }
    std::vector<std::vector<RecordId>*> collect_sink(work.collect.size());
    for (size_t i = 0; i < work.collect.size(); ++i) {
      collect_sink[i] = &work.collect[i].rids;
    }

    // Shard mirrors persist across every block of the pass and are
    // merged once at its end. The block-major accumulation order is
    // harmless: count merges are commutative integer adds, pending
    // buffers are (value, rid)-sorted before use, and collect rid
    // lists are re-sorted ascending below — so the merged state, and
    // therefore the tree, cannot depend on the block size or the
    // thread count.
    int shard_limit = scan_shards_ > 0 ? scan_shards_ : pool_->parallelism();
    if (scan_shards_ <= 0) {
      const unsigned hw = std::thread::hardware_concurrency();
      if (hw > 0) shard_limit = std::min(shard_limit, static_cast<int>(hw));
    }
    const int num_shards = static_cast<int>(
        std::min<int64_t>(std::max(shard_limit, 1), n));
    struct ScanShard {
      std::vector<HistBundle> fresh;
      std::vector<std::unique_ptr<Pending>> pending;
      std::vector<std::vector<RecordId>> collect;
      std::vector<RecordId> retain;
    };
    std::vector<ScanShard> shards(num_shards > 1 ? num_shards - 1 : 0);
    if (!shards.empty()) {
      // The clones read only shape fields the scan never mutates, so
      // per-shard mirror construction fans out.
      const int nc = schema_.num_classes();
      pool_->ParallelFor(
          static_cast<int64_t>(shards.size()), 1,
          [&](int64_t lo, int64_t hi) {
            for (int64_t s = lo; s < hi; ++s) {
              ScanShard& sh = shards[s];
              sh.fresh.reserve(work.fresh.size());
              for (size_t i = 0; i < work.fresh.size(); ++i) {
                // Sibling-derived entries are never scanned into, so the
                // mirror is a placeholder that merge skips below.
                if (work.fresh[i].derive_from_sibling >= 0) {
                  sh.fresh.emplace_back();
                } else {
                  sh.fresh.push_back(work.fresh[i].bundle.CloneEmptyShape());
                }
              }
              sh.pending.reserve(work.pending.size());
              for (size_t i = 0; i < work.pending.size(); ++i) {
                sh.pending.push_back(
                    ClonePendingEmpty(*work.pending[i].pending, nc));
              }
              sh.collect.resize(work.collect.size());
            }
          });
    }
    // Per-shard batch state for the attribute-major kernels; persists
    // across blocks (the batches hold global record ids and flush
    // against the code cache, not the resident block, so a batch may
    // straddle a block boundary).
    std::vector<BatchScratch> batches;
    if (codes_ != nullptr) {
      batches.resize(num_shards);
      for (BatchScratch& b : batches) b.rids.resize(work.fresh.size());
    }
    std::vector<RecordId> master_retain;
    std::vector<RecordId>* const master_retain_ptr =
        Store::kStreaming ? &master_retain : nullptr;

    source_.Reset();
    BlockView view;
    int64_t scanned = 0;
    while (source_.NextBlock(&view)) {
      store_.SetBlock(view);
      const int64_t bn = view.count;
      const int shards_here =
          static_cast<int>(std::min<int64_t>(num_shards, bn));
      if (shards_here <= 1) {
        ScanRange(view.begin, view.begin + bn, num_nodes, slots, fresh_sink,
                  pending_sink, collect_sink, master_retain_ptr,
                  codes_ != nullptr ? &batches[0] : nullptr);
      } else {
        const int64_t chunk = (bn + shards_here - 1) / shards_here;
        pool_->ParallelFor(shards_here, 1, [&](int64_t lo, int64_t hi) {
          for (int64_t s = lo; s < hi; ++s) {
            const int64_t begin = view.begin + s * chunk;
            const int64_t end =
                std::min<int64_t>(view.begin + bn, begin + chunk);
            if (s == 0) {
              ScanRange(begin, end, num_nodes, slots, fresh_sink,
                        pending_sink, collect_sink, master_retain_ptr,
                        codes_ != nullptr ? &batches[0] : nullptr);
              continue;
            }
            ScanShard& sh = shards[s - 1];
            std::vector<HistBundle*> fsink(work.fresh.size());
            for (size_t i = 0; i < work.fresh.size(); ++i) {
              fsink[i] = &sh.fresh[i];
            }
            std::vector<Pending*> psink(work.pending.size());
            for (size_t i = 0; i < work.pending.size(); ++i) {
              psink[i] = sh.pending[i].get();
            }
            std::vector<std::vector<RecordId>*> csink(work.collect.size());
            for (size_t i = 0; i < work.collect.size(); ++i) {
              csink[i] = &sh.collect[i];
            }
            ScanRange(begin, end, num_nodes, slots, fsink, psink, csink,
                      Store::kStreaming ? &sh.retain : nullptr,
                      codes_ != nullptr ? &batches[s] : nullptr);
          }
        });
      }
      scanned += bn;
      if constexpr (Store::kStreaming) {
        // Absorb the records that must outlive this block (pending
        // buffers, collect lists — both re-read at resolve time) into
        // the stash while the block's columns are still resident.
        store_.Stash(master_retain);
        master_retain.clear();
        for (ScanShard& sh : shards) {
          store_.Stash(sh.retain);
          sh.retain.clear();
        }
      }
    }
    store_.ClearBlock();
    if (source_.failed() || scanned != n) {
      throw std::runtime_error("cmp: table scan failed mid-pass");
    }

    // Flush the partial batches left at pass end into their shard's own
    // sinks (kernels add against the code cache, so no block needs to be
    // resident). Order relative to the earlier flushes is immaterial:
    // everything is commutative integer adds.
    if (codes_ != nullptr) {
      for (int s = 0; s < num_shards; ++s) {
        BatchScratch& b = batches[s];
        for (size_t i = 0; i < work.fresh.size(); ++i) {
          if (b.rids[i].empty()) continue;
          HistBundle* sink = s == 0 ? fresh_sink[i] : &shards[s - 1].fresh[i];
          FlushBatch(&b, static_cast<int>(i), sink);
        }
      }
    }

    for (ScanShard& sh : shards) {
      for (size_t i = 0; i < work.fresh.size(); ++i) {
        if (work.fresh[i].derive_from_sibling >= 0) continue;
        work.fresh[i].bundle.MergeSameShape(sh.fresh[i]);
      }
      for (size_t i = 0; i < work.pending.size(); ++i) {
        MergePendingInto(work.pending[i].pending.get(), *sh.pending[i]);
      }
      for (size_t i = 0; i < work.collect.size(); ++i) {
        work.collect[i].rids.insert(work.collect[i].rids.end(),
                                    sh.collect[i].begin(),
                                    sh.collect[i].end());
      }
    }

    // Sibling subtraction: derived entries arrived holding their
    // PARENT's histograms; now that the sibling's scan is complete and
    // merged, parent minus sibling IS the derived child's exact counts.
    int64_t subtractions = 0;
    if (apply_sibling_subtraction_) {
      for (size_t i = 0; i < work.fresh.size(); ++i) {
        const int sib = work.fresh[i].derive_from_sibling;
        if (sib < 0) continue;
        work.fresh[i].bundle.SubtractSameShape(work.fresh[sib].bundle);
        ++subtractions;
      }
    }

    if (po != nullptr) {
      po->sibling_subtractions = subtractions;
      if (codes_ != nullptr) {
        po->code_cache_bytes = codes_->MemoryBytes();
        for (const BatchScratch& b : batches) {
          po->kernel_seconds += b.kernel_seconds;
        }
      }
    }
    // Restore the ascending record order a serial scan would have
    // produced (identity for the single-block in-memory path; required
    // after block-major accumulation so exact finishing sees records
    // in global order).
    for (CollectWork& w : work.collect) {
      std::sort(w.rids.begin(), w.rids.end());
    }

    // Buffered records count toward peak memory (they hold whole
    // records in a disk implementation). The streamed build really does
    // hold them: its stash is the disk implementation's side buffer.
    {
      int64_t buffered = 0;
      for (const PendingWork& w : work.pending) {
        buffered += static_cast<int64_t>(w.pending->buffer.size());
      }
      tracker_->NotePeakMemory(buffered * schema_.RecordBytes());
      if constexpr (Store::kStreaming) {
        tracker_->NotePeakMemory(store_.stash_bytes());
      }
    }
  }

 private:
  /// Per-shard state of the attribute-major kernel path: one pending
  /// record-id batch per fresh sink, the kernels' gather scratch, and
  /// the shard's accumulated kernel wall time.
  struct BatchScratch {
    std::vector<std::vector<RecordId>> rids;  // indexed by fresh slot
    KernelScratch kernel;
    double kernel_seconds = 0.0;
  };

  void FlushBatch(BatchScratch* b, int fs, HistBundle* sink) {
    std::vector<RecordId>& rids = b->rids[fs];
    Timer timer;
    sink->AccumulateBatch(*codes_, rids.data(), rids.size(), &b->kernel);
    b->kernel_seconds += timer.Seconds();
    rids.clear();
  }

  /// Runs the routing loop for records [begin, end) (which must lie
  /// inside the resident block) against the given per-slot scan sinks
  /// (the master work lists, or one shard's private mirrors during a
  /// parallel scan). When `retain` is non-null, every record that must
  /// stay readable after the block is evicted — buffered into a pending
  /// buffer or collected for exact finishing — is appended to it.
  /// `batch` (non-null iff the code cache is active) is this shard's
  /// kernel batch state: fresh-sink records are batched there and
  /// flushed attribute-major instead of being added record-major.
  void ScanRange(int64_t begin, int64_t end, int num_nodes,
                 const SlotMaps& slots, std::vector<HistBundle*>& fresh_sink,
                 std::vector<Pending*>& pending_sink,
                 std::vector<std::vector<RecordId>*>& collect_sink,
                 std::vector<RecordId>* retain, BatchScratch* batch) {
    for (RecordId r = static_cast<RecordId>(begin); r < end; ++r) {
      NodeId id = nid_[r];
      // Descend through every split resolved since the last scan.
      while (true) {
        const TreeNode& node = tree_.node(id);
        if (node.is_leaf || node.left == kInvalidNode) break;
        id = node.split.RoutesLeft(store_, r) ? node.left : node.right;
      }
      nid_[r] = id;
      if (id < num_nodes) {
        const int fs = slots.fresh[id];
        if (fs >= 0) {
          if (batch != nullptr) {
            std::vector<RecordId>& rids = batch->rids[fs];
            rids.push_back(r);
            if (rids.size() >= kScanBatchRecords) {
              FlushBatch(batch, fs, fresh_sink[fs]);
            }
          } else {
            fresh_sink[fs]->Add(store_, grids_, r);
          }
          continue;
        }
        const int ps = slots.pending[id];
        if (ps >= 0) {
          if (RoutePending(pending_sink[ps], store_, grids_, codes_, r) &&
              retain != nullptr) {
            retain->push_back(r);
          }
          continue;
        }
        const int cs = slots.collect[id];
        if (cs >= 0) {
          collect_sink[cs]->push_back(r);
          if (retain != nullptr) retain->push_back(r);
        }
      }
    }
  }

  Store& store_;
  BlockSource& source_;
  const Schema& schema_;
  const std::vector<IntervalGrid>& grids_;
  const DecisionTree& tree_;
  std::vector<NodeId>& nid_;
  ThreadPool* pool_;  // borrowed, never null
  ScanTracker* tracker_;
  const BinCodeCache* codes_;  // null when the cache is disabled
  int scan_shards_;
  bool apply_sibling_subtraction_ = true;
};

}  // namespace cmp

#endif  // CMP_CMP_SCAN_PASS_H_
