#ifndef CMP_CMP_FRONTIER_H_
#define CMP_CMP_FRONTIER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "cmp/bundle.h"
#include "hist/bin_codes.h"
#include "hist/quantiles.h"
#include "tree/split.h"

namespace cmp {

/// Frontier/pending lifecycle of the CMP build pipeline: the structures
/// a scan accumulates into (fresh histogram bundles, pending approximate
/// splits with their segments and buffers, collect lists) and the
/// operations that keep them consistent across sharded, blocked scans —
/// empty-mirror cloning, deterministic merging, record routing/flushing
/// and buffer sorting. Split *decisions* live one layer up in
/// split_plan.h; scan orchestration lives in scan_pass.h.

/// A record set aside because its split-attribute value falls in an alive
/// interval; the exact record is re-read from the (read-only) dataset at
/// flush time, so only the sort key and class are kept hot.
struct BufferedRecord {
  RecordId rid;
  double value;
  ClassId label;
};

constexpr int64_t kBufferedBytes = 20;  // rid + value + label on disk

struct Pending;

/// What a preliminary subnode (segment of a pending split) will become.
enum class PlanKind {
  /// Keep the (derived or fresh) bundle; analyze normally at resolution.
  kGrow,
  /// Nested pending split (CMP-B second-level split, Figure 8/10).
  kPending,
  /// Exact split decided from the derived sub-matrices; grandchild
  /// bundles fill during the scan.
  kExact,
};

/// One preliminary subnode of a pending split: the records strictly
/// between two alive intervals (or outside the outermost ones).
struct Segment {
  // Per-class counts of records routed here during the scan; for derived
  // bundles this equals the bundle totals once the buffer is flushed.
  std::vector<int64_t> counts;
  // Global X/interval range of the records this segment may receive
  // (including the partial alive columns filled by buffer flushes).
  int range_lo = 0;
  int range_hi = 0;

  PlanKind plan = PlanKind::kGrow;
  HistBundle bundle;             // kGrow
  bool bundle_fresh = true;      // fill during scan?
  std::unique_ptr<Pending> sub;  // kPending
  Split exact_split;             // kExact
  HistBundle exact_left;         // kExact: grandchild bundles
  HistBundle exact_right;
  std::vector<int64_t> exact_left_counts;  // kExact: routed counts
  std::vector<int64_t> exact_right_counts;
};

/// A pending (approximate) numeric split awaiting exact resolution at
/// the next scan.
struct Pending {
  AttrId attr = kInvalidAttr;
  // Alive interval indices on `attr` (global grid indices), ascending,
  // between 1 and max_alive entries.
  std::vector<int> alive;
  std::vector<Segment> segments;  // alive.size() + 1
  std::vector<BufferedRecord> buffer;
  int64_t MemoryBytes() const;
};

// ---------------------------------------------------------------------
// Per-shard scan state. A parallel scan hands each shard a contiguous,
// ascending record range and a private empty mirror of every histogram
// the scan accumulates; the mirrors are merged back in a fixed order.
// All merged state is integer counts (commutative, exact) or buffers
// concatenated in ascending-shard = ascending-record order, so the
// merged result is byte-for-byte the serial scan's — the root of the
// bit-identical-for-any-thread-count contract.

/// Empty structural mirror of `p`: same plan tree, zeroed counts, empty
/// buffers; bundles that accumulate during a scan are cloned empty,
/// derived (pre-filled, bundle_fresh == false) bundles are left empty
/// because RoutePending never touches them. `nc` is the class count.
std::unique_ptr<Pending> ClonePendingEmpty(const Pending& p, int nc);

/// Merges a shard mirror back into the master pending.
void MergePendingInto(Pending* dst, const Pending& src);

/// Sorts a pending buffer by (value, rid). The record id tiebreak makes
/// the order a total one — equal-valued records always route to the same
/// side of the resolved split, so the tree is unchanged, but the sorted
/// buffer is now a unique permutation: re-sorting an already-sorted
/// buffer is a no-op, which lets the per-pending sorts run as a parallel
/// pre-pass without perturbing anything downstream.
void SortBuffer(std::vector<BufferedRecord>* buffer);

/// Flattens a pending tree (the top-level split plus any nested
/// sub-pendings) into a work list, so every buffer sort can fan out.
void CollectPendings(Pending* p, std::vector<Pending*>* out);

/// Alive intervals across `p` and its nested sub-pendings (observer
/// metric).
int64_t CountAliveIntervals(const Pending& p);

/// Buffered records across `p` and its nested sub-pendings (observer
/// metric).
int64_t CountBufferedRecords(const Pending& p);

// ---------------------------------------------------------------------
// The frontier work lists: what the next scan must accumulate for every
// active node of the tree's growth frontier.

/// A node awaiting its first complete histogram bundle.
///
/// When `derive_from_sibling` is >= 0 the node's bundle is not
/// accumulated during the scan at all: `bundle` arrives holding the
/// PARENT's full histograms, and after the scan the sink at that index
/// of the same fresh list (the node's sibling) is subtracted from it.
/// A split partitions the parent's records exactly into its two
/// children, so parent-minus-sibling is cell-for-cell the counts a
/// direct scan of this child would have produced — the scan only pays
/// for the smaller child.
struct FreshWork {
  NodeId node;
  HistBundle bundle;
  int derive_from_sibling = -1;
};

/// A node whose approximate split resolves after the next scan.
struct PendingWork {
  NodeId node;
  std::unique_ptr<Pending> pending;
};

/// A node whose partition fits in memory: its record ids are collected
/// during the next scan and the subtree is finished exactly.
struct CollectWork {
  NodeId node;
  std::vector<RecordId> rids;
};

/// One scan round's work lists. The build loop scans against the current
/// queues while split resolution emits into the next round's.
struct FrontierQueues {
  std::vector<FreshWork> fresh;
  std::vector<PendingWork> pending;
  std::vector<CollectWork> collect;

  bool Empty() const {
    return fresh.empty() && pending.empty() && collect.empty();
  }
  void Clear() {
    fresh.clear();
    pending.clear();
    collect.clear();
  }
};

// ---------------------------------------------------------------------
// Record routing through a pending split. Templated over the record
// store (record_store.h) like the rest of the pipeline; all reads are
// const, so shards can route concurrently into private mirrors.

/// Routes record `r` through a pending split (at most one nested
/// level). Returns true if the record was set aside in a (possibly
/// nested) pending buffer — i.e. it will be re-read at resolve time.
/// `codes` (nullable) is the build's bin-code cache: when present, bundle
/// adds read the cached interval index instead of binary-searching the
/// grid — identical counts either way, since codes agree with IntervalOf
/// by construction.
template <class Store>
bool RoutePending(Pending* p, const Store& store,
                  const std::vector<IntervalGrid>& grids,
                  const BinCodeCache* codes, RecordId r) {
  const double v = store.numeric(p->attr, r);
  const int iv =
      codes != nullptr ? codes->code(p->attr, r) : grids[p->attr].IntervalOf(v);
  int k = 0;
  for (int a : p->alive) {
    if (iv == a) {
      p->buffer.push_back({r, v, store.label(r)});
      return true;
    }
    if (iv > a) ++k;
  }
  Segment& seg = p->segments[k];
  seg.counts[store.label(r)]++;
  switch (seg.plan) {
    case PlanKind::kGrow:
      if (seg.bundle_fresh) {
        if (codes != nullptr) {
          seg.bundle.AddCoded(*codes, r);
        } else {
          seg.bundle.Add(store, grids, r);
        }
      }
      break;
    case PlanKind::kPending:
      return RoutePending(seg.sub.get(), store, grids, codes, r);
    case PlanKind::kExact:
      if (seg.exact_split.RoutesLeft(store, r)) {
        seg.exact_left_counts[store.label(r)]++;
        if (codes != nullptr) {
          seg.exact_left.AddCoded(*codes, r);
        } else {
          seg.exact_left.Add(store, grids, r);
        }
      } else {
        seg.exact_right_counts[store.label(r)]++;
        if (codes != nullptr) {
          seg.exact_right.AddCoded(*codes, r);
        } else {
          seg.exact_right.Add(store, grids, r);
        }
      }
      break;
  }
  return false;
}

/// Adds a buffered record to whatever sits on one side of a resolved
/// split: a nested pending, an exact sub-split, or a plain bundle.
template <class Store>
void FlushIntoSegment(Segment* seg, const Store& store,
                      const std::vector<IntervalGrid>& grids,
                      const BinCodeCache* codes, RecordId r) {
  seg->counts[store.label(r)]++;
  switch (seg->plan) {
    case PlanKind::kGrow:
      if (codes != nullptr) {
        seg->bundle.AddCoded(*codes, r);
      } else {
        seg->bundle.Add(store, grids, r);
      }
      break;
    case PlanKind::kPending:
      // A flushed record can land in a nested pending's buffer; it was
      // already stashed when it was first buffered, so the nested
      // resolve (later this round) can still read it.
      RoutePending(seg->sub.get(), store, grids, codes, r);
      break;
    case PlanKind::kExact:
      if (seg->exact_split.RoutesLeft(store, r)) {
        seg->exact_left_counts[store.label(r)]++;
        if (codes != nullptr) {
          seg->exact_left.AddCoded(*codes, r);
        } else {
          seg->exact_left.Add(store, grids, r);
        }
      } else {
        seg->exact_right_counts[store.label(r)]++;
        if (codes != nullptr) {
          seg->exact_right.AddCoded(*codes, r);
        } else {
          seg->exact_right.Add(store, grids, r);
        }
      }
      break;
  }
}

}  // namespace cmp

#endif  // CMP_CMP_FRONTIER_H_
