#include "cmp/cmp.h"

#include <memory>

#include "cmp/build_driver.h"
#include "cmp/record_store.h"
#include "cmp/variant_policy.h"
#include "common/thread_pool.h"
#include "io/block_source.h"

namespace cmp {

BuildResult CmpBuilder::Build(const Dataset& train) {
  BuildResult result;
  std::unique_ptr<ThreadPool> owned;
  ThreadPool* pool = pool_;
  if (pool == nullptr) {
    owned = std::make_unique<ThreadPool>(options_.base.num_threads);
    pool = owned.get();
  }
  // The whole table as one zero-copy block: the block loop degenerates
  // to the classic in-memory scan.
  DatasetBlockSource source(train);
  InMemoryStore store(train);
  CmpBuild<InMemoryStore> build(store, source, options_, pool, &result);
  build.Run();
  return result;
}

BuildResult CmpBuilder::BuildStreamed(BlockSource& source, bool prefetch) {
  BuildResult result;
  std::unique_ptr<ThreadPool> owned;
  ThreadPool* pool = pool_;
  if (pool == nullptr) {
    owned = std::make_unique<ThreadPool>(options_.base.num_threads);
    pool = owned.get();
  }
  source.set_prefetch_pool(
      prefetch && pool->num_threads() > 0 ? pool : nullptr);
  StreamStore store(source.schema(), source.num_records());
  CmpBuild<StreamStore> build(store, source, options_, pool, &result);
  build.Run();
  return result;
}

std::string CmpBuilder::name() const {
  return VariantPolicy::For(options_.variant).display_name;
}

CmpOptions CmpSOptions() {
  CmpOptions o;
  o.variant = CmpVariant::kS;
  return o;
}

CmpOptions CmpBOptions() {
  CmpOptions o;
  o.variant = CmpVariant::kB;
  return o;
}

CmpOptions CmpFullOptions() {
  CmpOptions o;
  o.variant = CmpVariant::kFull;
  return o;
}

}  // namespace cmp
