#include "cmp/cmp.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <utility>
#include <vector>

#include "cmp/bundle.h"
#include "cmp/linear.h"
#include "cmp/pairs.h"
#include "cmp/record_store.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "exact/exact.h"
#include "gini/categorical.h"
#include "gini/estimator.h"
#include "gini/gini.h"
#include "hist/grids.h"
#include "io/scan.h"
#include "pruning/mdl.h"

namespace cmp {

namespace {

ClassId Majority(const std::vector<int64_t>& counts) {
  ClassId best = 0;
  for (ClassId c = 1; c < static_cast<ClassId>(counts.size()); ++c) {
    if (counts[c] > counts[best]) best = c;
  }
  return best;
}

bool IsPure(const std::vector<int64_t>& counts) {
  int nonzero = 0;
  for (int64_t c : counts) {
    if (c > 0) ++nonzero;
  }
  return nonzero <= 1;
}

int64_t Sum(const std::vector<int64_t>& counts) {
  int64_t n = 0;
  for (int64_t c : counts) n += c;
  return n;
}

// A record set aside because its split-attribute value falls in an alive
// interval; the exact record is re-read from the (read-only) dataset at
// flush time, so only the sort key and class are kept hot.
struct BufferedRecord {
  RecordId rid;
  double value;
  ClassId label;
};

constexpr int64_t kBufferedBytes = 20;  // rid + value + label on disk

struct Pending;

// What a preliminary subnode (segment of a pending split) will become.
enum class PlanKind {
  /// Keep the (derived or fresh) bundle; analyze normally at resolution.
  kGrow,
  /// Nested pending split (CMP-B second-level split, Figure 8/10).
  kPending,
  /// Exact split decided from the derived sub-matrices; grandchild
  /// bundles fill during the scan.
  kExact,
};

// One preliminary subnode of a pending split: the records strictly
// between two alive intervals (or outside the outermost ones).
struct Segment {
  // Per-class counts of records routed here during the scan; for derived
  // bundles this equals the bundle totals once the buffer is flushed.
  std::vector<int64_t> counts;
  // Global X/interval range of the records this segment may receive
  // (including the partial alive columns filled by buffer flushes).
  int range_lo = 0;
  int range_hi = 0;

  PlanKind plan = PlanKind::kGrow;
  HistBundle bundle;                      // kGrow
  bool bundle_fresh = true;               // fill during scan?
  std::unique_ptr<Pending> sub;           // kPending
  Split exact_split;                      // kExact
  HistBundle exact_left;                  // kExact: grandchild bundles
  HistBundle exact_right;
  std::vector<int64_t> exact_left_counts;   // kExact: routed counts
  std::vector<int64_t> exact_right_counts;
};

// A pending (approximate) numeric split awaiting exact resolution at the
// next scan.
struct Pending {
  AttrId attr = kInvalidAttr;
  // Alive interval indices on `attr` (global grid indices), ascending,
  // between 1 and max_alive entries.
  std::vector<int> alive;
  std::vector<Segment> segments;  // alive.size() + 1
  std::vector<BufferedRecord> buffer;
  int64_t MemoryBytes() const;
};

int64_t SegmentMemory(const Segment& seg) {
  int64_t bytes = seg.bundle.MemoryBytes() + seg.exact_left.MemoryBytes() +
                  seg.exact_right.MemoryBytes();
  if (seg.sub != nullptr) bytes += seg.sub->MemoryBytes();
  return bytes;
}

int64_t Pending::MemoryBytes() const {
  int64_t bytes = static_cast<int64_t>(buffer.size()) * kBufferedBytes;
  for (const Segment& seg : segments) bytes += SegmentMemory(seg);
  return bytes;
}

// ---------------------------------------------------------------------
// Per-shard scan state. A parallel scan hands each shard a contiguous,
// ascending record range and a private empty mirror of every histogram
// the scan accumulates; the mirrors are merged back in a fixed order.
// All merged state is integer counts (commutative, exact) or buffers
// concatenated in ascending-shard = ascending-record order, so the
// merged result is byte-for-byte the serial scan's — the root of the
// bit-identical-for-any-thread-count contract.

// Empty structural mirror of `p`: same plan tree, zeroed counts, empty
// buffers; bundles that accumulate during a scan are cloned empty,
// derived (pre-filled, bundle_fresh == false) bundles are left empty
// because RoutePending never touches them.
std::unique_ptr<Pending> ClonePendingEmpty(const Pending& p, int nc) {
  auto clone = std::make_unique<Pending>();
  clone->attr = p.attr;
  clone->alive = p.alive;
  clone->segments.resize(p.segments.size());
  for (size_t i = 0; i < p.segments.size(); ++i) {
    const Segment& src = p.segments[i];
    Segment& dst = clone->segments[i];
    dst.counts.assign(nc, 0);
    dst.range_lo = src.range_lo;
    dst.range_hi = src.range_hi;
    dst.plan = src.plan;
    dst.bundle_fresh = src.bundle_fresh;
    switch (src.plan) {
      case PlanKind::kGrow:
        if (src.bundle_fresh) dst.bundle = src.bundle.CloneEmptyShape();
        break;
      case PlanKind::kPending:
        dst.sub = ClonePendingEmpty(*src.sub, nc);
        break;
      case PlanKind::kExact:
        dst.exact_split = src.exact_split;
        dst.exact_left = src.exact_left.CloneEmptyShape();
        dst.exact_right = src.exact_right.CloneEmptyShape();
        dst.exact_left_counts.assign(nc, 0);
        dst.exact_right_counts.assign(nc, 0);
        break;
    }
  }
  return clone;
}

void MergePendingInto(Pending* dst, const Pending& src) {
  dst->buffer.insert(dst->buffer.end(), src.buffer.begin(),
                     src.buffer.end());
  for (size_t i = 0; i < dst->segments.size(); ++i) {
    Segment& d = dst->segments[i];
    const Segment& s = src.segments[i];
    for (size_t c = 0; c < d.counts.size(); ++c) d.counts[c] += s.counts[c];
    switch (d.plan) {
      case PlanKind::kGrow:
        if (d.bundle_fresh) d.bundle.MergeSameShape(s.bundle);
        break;
      case PlanKind::kPending:
        MergePendingInto(d.sub.get(), *s.sub);
        break;
      case PlanKind::kExact:
        for (size_t c = 0; c < d.exact_left_counts.size(); ++c) {
          d.exact_left_counts[c] += s.exact_left_counts[c];
          d.exact_right_counts[c] += s.exact_right_counts[c];
        }
        d.exact_left.MergeSameShape(s.exact_left);
        d.exact_right.MergeSameShape(s.exact_right);
        break;
    }
  }
}

// Sorts a pending buffer by (value, rid). The record id tiebreak makes
// the order a total one — equal-valued records always route to the same
// side of the resolved split, so the tree is unchanged, but the sorted
// buffer is now a unique permutation: re-sorting an already-sorted
// buffer is a no-op, which lets the per-pending sorts run as a parallel
// pre-pass without perturbing anything downstream.
void SortBuffer(std::vector<BufferedRecord>* buffer) {
  std::sort(buffer->begin(), buffer->end(),
            [](const BufferedRecord& a, const BufferedRecord& b) {
              return a.value != b.value ? a.value < b.value : a.rid < b.rid;
            });
}

// Flattens a pending tree (the top-level split plus any nested
// sub-pendings) into a work list, so every buffer sort can fan out.
void CollectPendings(Pending* p, std::vector<Pending*>* out) {
  out->push_back(p);
  for (Segment& seg : p->segments) {
    if (seg.plan == PlanKind::kPending) CollectPendings(seg.sub.get(), out);
  }
}

// Per-attribute analysis outcome used for both split selection and
// prediction.
struct BundleAnalysis {
  // Estimated (numeric) or exact (categorical) gini per attribute; the
  // paper selects the split attribute by this value.
  std::vector<double> attr_est;
  // Decision for the node.
  enum class Decision {
    kNone,            // no valid split: leaf
    kNumericPending,  // approximate split with alive intervals
    kNumericExact,    // boundary split, no interval can beat it
    kCategorical,
    kLinear,
  };
  Decision decision = Decision::kNone;
  AttrId attr = kInvalidAttr;
  // kNumericPending / kNumericExact.
  double fallback_threshold = 0.0;
  double fallback_gini = 1.0;
  std::vector<int> alive;                  // global interval indices
  std::vector<int64_t> exact_left_counts;  // kNumericExact / kCategorical
  // kCategorical.
  CategoricalSplit cat;
  // kLinear.
  Split linear_split;
};

// ---------------------------------------------------------------------
// The builder implementation proper.
//
// Templated over the record store (record_store.h): the in-memory path
// instantiates it with InMemoryStore + a zero-copy DatasetBlockSource,
// the out-of-core path with StreamStore + a TableBlockSource. Every
// scan consumes columnar blocks from the BlockSource; per-record reads
// go through the store, which serves them from the resident block (or,
// during the resolve phase, from the stash of retained records).

template <class Store>
class CmpBuild {
 public:
  CmpBuild(Store& store, BlockSource& source, const CmpOptions& options,
           ThreadPool* pool, BuildResult* result)
      : store_(store),
        source_(source),
        schema_(store.schema()),
        options_(options),
        pool_(pool),
        result_(result),
        tracker_(&result->stats) {}

  void Run();

 private:
  struct FreshWork {
    NodeId node;
    HistBundle bundle;
  };
  struct PendingWork {
    NodeId node;
    std::unique_ptr<Pending> pending;
  };
  struct CollectWork {
    NodeId node;
    std::vector<RecordId> rids;
  };

  bool bivariate() const {
    return options_.variant != CmpVariant::kS && !numeric_attrs_.empty();
  }

  // Cut value of the global grid boundary with index `cut` on attribute
  // `a` (cut i separates interval i from i+1).
  double CutValue(AttrId a, int cut) const {
    return grids_[a].UpperCut(cut);
  }

  NodeId AddChild(const std::vector<int64_t>& counts, int depth) {
    TreeNode child;
    child.depth = depth;
    child.class_counts = counts;
    child.leaf_class = Majority(counts);
    child.is_leaf = false;  // provisional; leaves are marked explicitly
    return result_->tree.AddNode(std::move(child));
  }

  void MakeLeaf(NodeId id) { result_->tree.MakeLeaf(id); }

  // Chooses the X-axis attribute for a fresh child bundle: the numeric
  // attribute with the smallest estimated gini at the parent
  // (predictSplit's fallback row for attributes not on the sub-matrix
  // axes; see DESIGN.md for the simplification).
  AttrId PredictX(const BundleAnalysis& parent) const;

  // How a child restricts the parent's records on the attribute that was
  // just split: a row range for numeric splits, a value mask for
  // categorical ones.
  struct ChildRestriction {
    AttrId split_attr = kInvalidAttr;
    bool is_range = false;
    int lo = 0;  // global interval indices on split_attr
    int hi = 0;
    const std::vector<uint8_t>* mask = nullptr;
    uint8_t want = 1;
  };

  // The paper's predictSplit (Figure 7): exact ginis for the attributes
  // on the sub-matrix axes (computed from the parent's matrices
  // restricted to the child's rows), parent-level estimates for the
  // rest; returns the argmin attribute, which becomes the child's X
  // axis.
  AttrId PredictChildX(const HistBundle& parent,
                       const std::vector<double>& parent_est,
                       const ChildRestriction& r) const;

  // Scores one attribute histogram the way Analyze does (boundary
  // minimum clamped by interior-splittable interval estimates). `offs`
  // maps local histogram rows to global grid intervals.
  double AttrEstFromHist(AttrId a, const Histogram1D& hist, int offs) const;

  HistBundle MakeFreshBundle(AttrId x_attr, int x_lo, int x_hi) const;

  // Analyzes a node's complete histogram bundle and picks a split
  // decision. `totals` are the node's per-class counts.
  BundleAnalysis Analyze(const HistBundle& bundle,
                         const std::vector<int64_t>& totals) const;

  // Applies stop tests + Analyze to a real tree node whose bundle is
  // complete, materializing children / pendings / collect work.
  // `predicted` marks bundles whose X axis was chosen by predictSplit
  // (fresh bundles); derived sub-matrix bundles inherit their X axis and
  // do not count toward the prediction hit-rate. `pre` optionally hands
  // in the node's analysis when it was computed ahead of time (frontier
  // nodes of one level are analyzed in parallel before their serial,
  // order-preserving application to the tree).
  void GrowNode(NodeId id, HistBundle&& bundle, bool predicted = true,
                const BundleAnalysis* pre = nullptr);

  // Whether GrowNode would reach Analyze for a node with these totals
  // (mirrors its early-out chain); used to skip useless pre-analyses.
  bool WouldAnalyze(NodeId id, const std::vector<int64_t>& totals) const;

  // Runs the routing loop for records [begin, end) (which must lie
  // inside the resident block) against the given per-slot scan sinks
  // (the master work lists, or one shard's private mirrors during a
  // parallel scan). When `retain` is non-null, every record that must
  // stay readable after the block is evicted — buffered into a pending
  // buffer or collected for exact finishing — is appended to it.
  void ScanRange(int64_t begin, int64_t end, int num_nodes,
                 const std::vector<int>& fresh_slot,
                 const std::vector<int>& pending_slot,
                 const std::vector<int>& collect_slot,
                 std::vector<HistBundle*>& fresh_sink,
                 std::vector<Pending*>& pending_sink,
                 std::vector<std::vector<RecordId>*>& collect_sink,
                 std::vector<RecordId>* retain);

  // Builds the Pending structure for a node whose decision is
  // kNumericPending.
  std::unique_ptr<Pending> MakePending(const HistBundle& bundle,
                                       const BundleAnalysis& analysis,
                                       int depth);

  // Plans one derived segment of a CMP-B double split.
  void PlanSegment(Segment* seg, int depth);

  // Routes record `r` through a pending split (at most one nested
  // level). Returns true if the record was set aside in a (possibly
  // nested) pending buffer — i.e. it will be re-read at resolve time.
  bool RoutePending(Pending* p, RecordId r);

  // Resolves a pending split of tree node `id`, creating children (and
  // grandchildren for nested pendings) and growing the frontier.
  void ResolvePending(NodeId id, Pending* p, int depth);

  // Adds a buffered record to whatever sits on one side of a resolved
  // split: a nested pending, an exact sub-split, or a plain bundle.
  void FlushIntoSegment(Segment* seg, RecordId r);

  // Finishes one collect partition with the exact in-memory builder:
  // directly on the dataset when there is one, otherwise on a Dataset
  // materialized from the stash (rids ascending, so local record i is
  // global record rids[i] — BuildExactSubtree depends only on the
  // record sequence, so the subtree is identical either way).
  void FinishCollect(const std::vector<RecordId>& rids, DecisionTree* tree,
                     NodeId node, ScanTracker* tracker);

  Store& store_;
  BlockSource& source_;
  const Schema& schema_;
  CmpOptions options_;
  ThreadPool* pool_;  // borrowed, never null (CmpBuilder::Build guarantees)
  BuildResult* result_;
  ScanTracker tracker_;

  std::vector<IntervalGrid> grids_;
  // interior_[a][i] is nonzero iff grid interval i of numeric attribute a
  // contains at least two distinct values in the training set — i.e. an
  // *interior* split point can exist there. Tie buckets (e.g. the spike
  // of commission == 0 in the Agrawal data) collapse to a single value,
  // so the gradient estimate must be clamped to the interval's edge
  // ginis and the interval must never be selected as alive.
  std::vector<std::vector<char>> interior_;
  std::vector<AttrId> numeric_attrs_;
  std::vector<NodeId> nid_;

  // Optional all-pairs extension: the best root-level pairwise linear
  // relation discovered during the initial pass (empty if disabled or
  // none found).
  std::vector<PairRelation> root_relations_;

  std::vector<FreshWork> fresh_;
  std::vector<PendingWork> pending_;
  std::vector<CollectWork> collect_;
  // Work generated for the next scan.
  std::vector<FreshWork> next_fresh_;
  std::vector<PendingWork> next_pending_;
  std::vector<CollectWork> next_collect_;
};

template <class Store>
AttrId CmpBuild<Store>::PredictX(const BundleAnalysis& parent) const {
  AttrId best = numeric_attrs_.front();
  double best_est = std::numeric_limits<double>::infinity();
  for (AttrId a : numeric_attrs_) {
    if (grids_[a].num_intervals() < 2) continue;
    const double est = parent.attr_est.empty()
                           ? 0.0
                           : parent.attr_est[a];
    if (est < best_est) {
      best_est = est;
      best = a;
    }
  }
  return best;
}

template <class Store>
double CmpBuild<Store>::AttrEstFromHist(AttrId a, const Histogram1D& hist,
                                 int offs) const {
  if (hist.num_intervals() < 2) {
    return std::numeric_limits<double>::infinity();
  }
  const AttrAnalysis an = AnalyzeAttribute(hist);
  if (an.best_boundary < 0) {
    return std::numeric_limits<double>::infinity();
  }
  double est = an.gini_min;
  for (int i = 0; i < static_cast<int>(an.interval_est.size()); ++i) {
    if (interior_[a][offs + i] != 0) {
      est = std::min(est, an.interval_est[i]);
    }
  }
  return est;
}

template <class Store>
AttrId CmpBuild<Store>::PredictChildX(const HistBundle& parent,
                               const std::vector<double>& parent_est,
                               const ChildRestriction& r) const {
  std::vector<double> est = parent_est;
  if (est.empty()) {
    est.assign(schema_.num_attrs(),
               std::numeric_limits<double>::infinity());
  }
  if (parent.bivariate() && r.split_attr != kInvalidAttr) {
    if (r.split_attr == parent.x_attr() && r.is_range) {
      // Split on the X axis: every matrix restricted to the child's X
      // columns gives the child's exact histogram for its Y attribute,
      // and any of them gives the child's X histogram.
      const int lo = r.lo - parent.x_lo();
      const int hi = r.hi - parent.x_lo();
      bool x_done = false;
      for (AttrId a = 0; a < schema_.num_attrs(); ++a) {
        if (a == parent.x_attr() || !schema_.is_numeric(a)) continue;
        const HistogramMatrix& m = parent.matrix(a);
        est[a] = AttrEstFromHist(a, m.MarginalY(lo, hi), 0);
        if (!x_done) {
          est[parent.x_attr()] = AttrEstFromHist(
              parent.x_attr(), m.MarginalX(lo, hi), r.lo);
          x_done = true;
        }
      }
    } else if (r.split_attr != parent.x_attr()) {
      // Split on a Y attribute: the (X, split_attr) matrix restricted to
      // the child's rows gives the child's exact X and split_attr
      // histograms; other attributes keep the parent-level estimate.
      const HistogramMatrix& m = parent.matrix(r.split_attr);
      const Histogram1D hx =
          r.mask != nullptr ? m.MarginalXByYMask(*r.mask, r.want)
                            : m.MarginalXByYRange(r.lo, r.hi);
      est[parent.x_attr()] =
          AttrEstFromHist(parent.x_attr(), hx, parent.x_lo());
      if (schema_.is_numeric(r.split_attr) && r.is_range) {
        est[r.split_attr] = AttrEstFromHist(
            r.split_attr, m.MarginalYByYRange(r.lo, r.hi), r.lo);
      }
    }
  }
  AttrId best = numeric_attrs_.front();
  double best_est = std::numeric_limits<double>::infinity();
  for (AttrId a : numeric_attrs_) {
    if (grids_[a].num_intervals() < 2) continue;
    if (est[a] < best_est) {
      best_est = est[a];
      best = a;
    }
  }
  return best;
}

template <class Store>
HistBundle CmpBuild<Store>::MakeFreshBundle(AttrId x_attr, int x_lo, int x_hi) const {
  if (!bivariate()) return HistBundle::MakeUnivariate(schema_, grids_);
  return HistBundle::MakeBivariate(schema_, grids_, x_attr, x_lo, x_hi);
}

template <class Store>
BundleAnalysis CmpBuild<Store>::Analyze(const HistBundle& bundle,
                                 const std::vector<int64_t>& totals) const {
  (void)totals;  // kept for symmetry with future split criteria
  BundleAnalysis out;
  out.attr_est.assign(schema_.num_attrs(),
                      std::numeric_limits<double>::infinity());

  // Per-attribute scoring (histogram extraction, boundary scan, interval
  // estimates, categorical subset search) touches only that attribute's
  // state, so it fans out across the pool; each slot is written by
  // exactly one worker. The winner is then reduced serially in ascending
  // attribute order — the identical comparison chain the serial loop
  // used, so the chosen attribute (ties included) does not depend on the
  // thread count.
  struct AttrResult {
    bool valid = false;
    bool is_cat = false;
    double est = 0.0;
    AttrAnalysis an;
    Histogram1D hist;
    CategoricalSplit cat;
  };
  std::vector<AttrResult> results(schema_.num_attrs());
  auto score_attr = [&](AttrId a) {
    AttrResult& res = results[a];
    Histogram1D hist = bundle.HistFor(a);
    if (schema_.is_numeric(a)) {
      if (hist.num_intervals() < 2) return;
      AttrAnalysis an = AnalyzeAttribute(hist);
      if (an.best_boundary < 0) return;
      // Clamp the per-interval estimates to intervals that can actually
      // contain an interior split point; a tie bucket's gini cannot drop
      // below its edge boundaries no matter what the gradient walk says.
      const int offs =
          (bundle.bivariate() && a == bundle.x_attr()) ? bundle.x_lo() : 0;
      double est = an.gini_min;
      for (int i = 0; i < static_cast<int>(an.interval_est.size()); ++i) {
        if (interior_[a][offs + i] != 0) {
          est = std::min(est, an.interval_est[i]);
        }
      }
      out.attr_est[a] = est;
      res.valid = true;
      res.est = est;
      res.an = std::move(an);
      res.hist = std::move(hist);
    } else {
      const CategoricalSplit cs = BestCategoricalSplit(hist);
      if (!cs.valid) return;
      out.attr_est[a] = cs.gini;
      res.valid = true;
      res.is_cat = true;
      res.est = cs.gini;
      res.cat = cs;
      res.hist = std::move(hist);
    }
  };
  if (pool_->parallelism() > 1 && schema_.num_attrs() > 1) {
    pool_->ParallelFor(schema_.num_attrs(), 1, [&](int64_t lo, int64_t hi) {
      for (int64_t a = lo; a < hi; ++a) score_attr(static_cast<AttrId>(a));
    });
  } else {
    for (AttrId a = 0; a < schema_.num_attrs(); ++a) score_attr(a);
  }

  double best_est = std::numeric_limits<double>::infinity();
  AttrId best_attr = kInvalidAttr;
  for (AttrId a = 0; a < schema_.num_attrs(); ++a) {
    if (results[a].valid && results[a].est < best_est) {
      best_est = results[a].est;
      best_attr = a;
    }
  }
  if (best_attr == kInvalidAttr) return out;  // kNone: leaf
  AttrAnalysis best_an = std::move(results[best_attr].an);
  Histogram1D best_hist = std::move(results[best_attr].hist);
  CategoricalSplit best_cat = results[best_attr].cat;
  const bool best_is_cat = results[best_attr].is_cat;

  // Linear-combination check (CMP full only): when no univariate split is
  // good enough, look for a splitting line in each matrix.
  if (options_.variant == CmpVariant::kFull && bundle.bivariate() &&
      best_est > options_.linear_skip_gini) {
    const AttrId x = bundle.x_attr();
    LinearSplitResult best_line;
    AttrId best_line_y = kInvalidAttr;
    for (AttrId y : numeric_attrs_) {
      if (y == x || grids_[y].num_intervals() < 2) continue;
      const LinearSplitResult line = FindBestLine(
          bundle.matrix(y), grids_[x], bundle.x_lo(), grids_[y],
          options_.linear_grid);
      if (line.valid && (!best_line.valid || line.gini < best_line.gini)) {
        best_line = line;
        best_line_y = y;
      }
    }
    if (best_line.valid &&
        best_line.gini < (1.0 - options_.linear_gain) * best_est) {
      // The coarse grid is enough to *detect* a linear relationship;
      // refine the winning matrix at full resolution so the committed
      // line hugs the true boundary (fewer residual fix-up splits).
      const LinearSplitResult refined =
          FindBestLine(bundle.matrix(best_line_y), grids_[x], bundle.x_lo(),
                       grids_[best_line_y],
                       std::max(bundle.matrix(best_line_y).x_intervals(),
                                bundle.matrix(best_line_y).y_intervals()));
      if (refined.valid && refined.gini <= best_line.gini) {
        best_line = refined;
      }
      out.decision = BundleAnalysis::Decision::kLinear;
      out.attr = x;
      out.linear_split = Split::Linear(x, best_line_y, best_line.a,
                                       best_line.b, best_line.c);
      return out;
    }
  }

  if (best_is_cat) {
    out.decision = BundleAnalysis::Decision::kCategorical;
    out.attr = best_attr;
    out.cat = best_cat;
    out.exact_left_counts.assign(schema_.num_classes(), 0);
    for (int v = 0; v < best_hist.num_intervals(); ++v) {
      if (best_cat.left_subset[v] != 0) {
        for (ClassId c = 0; c < schema_.num_classes(); ++c) {
          out.exact_left_counts[c] += best_hist.count(v, c);
        }
      }
    }
    return out;
  }

  // Numeric split on best_attr. Histogram rows are local for a bivariate
  // X attribute: translate to global grid indices.
  const int local_offset =
      (bundle.bivariate() && best_attr == bundle.x_attr()) ? bundle.x_lo()
                                                           : 0;
  const int global_cut = local_offset + best_an.best_boundary;
  out.attr = best_attr;
  out.fallback_threshold = CutValue(best_attr, global_cut);
  out.fallback_gini = best_an.gini_min;

  // Alive interval selection (Section 2.1): the interval with the lowest
  // estimate, plus the interval adjacent to the best boundary (the side
  // with the lower estimate), deduplicated and capped at max_alive. An
  // interval whose estimate cannot beat the boundary minimum is dropped.
  auto has_interior = [&](int local_i) {
    return interior_[best_attr][local_offset + local_i] != 0;
  };
  auto eligible = [&](int i) {
    return i >= 0 && i < static_cast<int>(best_an.interval_est.size()) &&
           has_interior(i) &&
           best_an.interval_est[i] < best_an.gini_min - 1e-12;
  };
  int est_arg = -1;
  double est_arg_val = std::numeric_limits<double>::infinity();
  for (int i = 0; i < static_cast<int>(best_an.interval_est.size()); ++i) {
    if (eligible(i) && best_an.interval_est[i] < est_arg_val) {
      est_arg_val = best_an.interval_est[i];
      est_arg = i;
    }
  }
  // Candidate alive intervals, per Section 2.1: both intervals adjacent
  // to the best boundary (the exact split usually hides just beside it)
  // and the interval with the smallest estimate, lowest-estimate first,
  // capped at max_alive.
  const int b = best_an.best_boundary;  // local cut between b and b+1
  std::vector<int> alive_local;
  auto add_alive = [&](int i) {
    if (!eligible(i)) return;
    for (int existing : alive_local) {
      if (existing == i) return;
    }
    alive_local.push_back(i);
  };
  add_alive(est_arg);
  add_alive(b);
  add_alive(b + 1);
  if (static_cast<int>(alive_local.size()) > options_.max_alive) {
    std::sort(alive_local.begin(), alive_local.end(), [&](int x, int y) {
      return best_an.interval_est[x] < best_an.interval_est[y];
    });
    alive_local.resize(options_.max_alive);
  }
  std::sort(alive_local.begin(), alive_local.end());

  if (alive_local.empty()) {
    out.decision = BundleAnalysis::Decision::kNumericExact;
    out.exact_left_counts = best_hist.PrefixBefore(best_an.best_boundary + 1);
    return out;
  }
  // CMP-B/CMP only grow a second level per scan when an X-axis split has
  // a single alive interval (Figure 10, line 18). When the split lands
  // on the X axis, trade a sliver of split precision for that extra
  // level by keeping only the best-estimated interval — CMP-S keeps the
  // full alive set and stays maximally exact.
  if (options_.variant != CmpVariant::kS && bundle.bivariate() &&
      best_attr == bundle.x_attr() && alive_local.size() > 1) {
    int keep = alive_local[0];
    for (int i : alive_local) {
      if (best_an.interval_est[i] < best_an.interval_est[keep]) keep = i;
    }
    alive_local = {keep};
  }
  out.decision = BundleAnalysis::Decision::kNumericPending;
  out.alive.reserve(alive_local.size());
  for (int i : alive_local) out.alive.push_back(local_offset + i);
  return out;
}

template <class Store>
std::unique_ptr<Pending> CmpBuild<Store>::MakePending(const HistBundle& bundle,
                                               const BundleAnalysis& analysis,
                                               int depth) {
  auto p = std::make_unique<Pending>();
  p->attr = analysis.attr;
  p->alive = analysis.alive;
  const int num_segments = static_cast<int>(p->alive.size()) + 1;
  p->segments.resize(num_segments);

  // Global interval range of the node on the split attribute.
  const bool on_x = bundle.bivariate() && analysis.attr == bundle.x_attr();
  const int node_lo = on_x ? bundle.x_lo() : 0;
  const int node_hi =
      on_x ? bundle.x_hi() : grids_[analysis.attr].num_intervals();

  // Segment k's record range: between alive[k-1] and alive[k],
  // exclusive; its *bundle* range additionally covers the partial alive
  // columns it may receive at flush time.
  for (int k = 0; k < num_segments; ++k) {
    Segment& seg = p->segments[k];
    seg.counts.assign(schema_.num_classes(), 0);
    seg.range_lo = k == 0 ? node_lo : p->alive[k - 1];
    seg.range_hi = k == num_segments - 1 ? node_hi : p->alive[k] + 1;
  }

  const bool double_split = bivariate() && on_x && p->alive.size() == 1 &&
                            depth + 1 < options_.base.max_depth;
  if (double_split) {
    // CMP-B: derive the two subnodes' matrices from the parent's (the
    // alive column stays empty until the buffer is flushed) and plan
    // their own splits right away (Figure 10, line 18).
    const int i1 = p->alive[0];
    Segment& left = p->segments[0];
    Segment& right = p->segments[1];
    left.bundle = bundle.DeriveXRange(left.range_lo, left.range_hi,
                                      left.range_lo, i1);
    right.bundle = bundle.DeriveXRange(right.range_lo, right.range_hi,
                                       i1 + 1, right.range_hi);
    left.bundle_fresh = false;
    right.bundle_fresh = false;
    PlanSegment(&left, depth + 1);
    PlanSegment(&right, depth + 1);
  } else if (!bivariate()) {
    for (int k = 0; k < num_segments; ++k) {
      Segment& seg = p->segments[k];
      seg.bundle = HistBundle::MakeUnivariate(schema_, grids_);
      seg.bundle_fresh = true;
      seg.plan = PlanKind::kGrow;
    }
  } else if (num_segments == 2) {
    // One alive interval: each side of the eventual split is exactly one
    // segment (no merging), so each subnode can get its own predicted
    // X axis (paper Figure 7) and an X range matching its records.
    for (int k = 0; k < num_segments; ++k) {
      Segment& seg = p->segments[k];
      // Prediction sees full columns only; the alive column's records are
      // still unassigned at this point.
      const int full_lo = k == 0 ? seg.range_lo : seg.range_lo + 1;
      const int full_hi = k == 0 ? seg.range_hi - 1 : seg.range_hi;
      ChildRestriction r{analysis.attr, true, full_lo, full_hi, nullptr, 1};
      const AttrId x = PredictChildX(bundle, analysis.attr_est, r);
      int lo = 0;
      int hi = grids_[x].num_intervals();
      if (x == analysis.attr) {
        lo = seg.range_lo;
        hi = seg.range_hi;
      } else if (bundle.bivariate() && x == bundle.x_attr()) {
        lo = bundle.x_lo();
        hi = bundle.x_hi();
      }
      seg.bundle = HistBundle::MakeBivariate(schema_, grids_, x, lo, hi);
      seg.bundle_fresh = true;
      seg.plan = PlanKind::kGrow;
    }
  } else {
    // Two alive intervals: resolution may merge adjacent segments, so
    // every segment needs the SAME bundle shape — use one shared
    // predicted X covering the whole node range.
    const AttrId x = PredictX(analysis);
    int lo = 0;
    int hi = grids_[x].num_intervals();
    if (on_x && x == analysis.attr) {
      lo = node_lo;
      hi = node_hi;
    } else if (bundle.bivariate() && x == bundle.x_attr()) {
      lo = bundle.x_lo();
      hi = bundle.x_hi();
    }
    for (int k = 0; k < num_segments; ++k) {
      Segment& seg = p->segments[k];
      seg.bundle = HistBundle::MakeBivariate(schema_, grids_, x, lo, hi);
      seg.bundle_fresh = true;
      seg.plan = PlanKind::kGrow;
    }
  }
  return p;
}

template <class Store>
void CmpBuild<Store>::PlanSegment(Segment* seg, int depth) {
  const std::vector<int64_t> totals = seg->bundle.ClassTotals();
  // Too small / pure / deep partitions keep the derived bundle and are
  // finished at resolution time.
  if (IsPure(totals) || Sum(totals) < options_.base.min_split_records ||
      Sum(totals) <= options_.base.in_memory_threshold ||
      depth >= options_.base.max_depth) {
    seg->plan = PlanKind::kGrow;
    return;
  }
  const BundleAnalysis an = Analyze(seg->bundle, totals);
  switch (an.decision) {
    case BundleAnalysis::Decision::kNone:
      seg->plan = PlanKind::kGrow;
      return;
    case BundleAnalysis::Decision::kNumericPending: {
      // Nested pending: its segments are fresh grandchild bundles.
      auto sub = std::make_unique<Pending>();
      sub->attr = an.attr;
      sub->alive = an.alive;
      const int num_segments = static_cast<int>(an.alive.size()) + 1;
      sub->segments.resize(num_segments);
      const bool sub_on_x = an.attr == seg->bundle.x_attr();
      const int node_lo = sub_on_x ? seg->bundle.x_lo() : 0;
      const int node_hi =
          sub_on_x ? seg->bundle.x_hi() : grids_[an.attr].num_intervals();
      // Predict each grandchild's X axis when merging is impossible
      // (single alive interval); otherwise share one shape.
      AttrId shared_x = kInvalidAttr;
      if (num_segments != 2) shared_x = PredictX(an);
      for (int k = 0; k < num_segments; ++k) {
        Segment& sseg = sub->segments[k];
        sseg.counts.assign(schema_.num_classes(), 0);
        sseg.range_lo = k == 0 ? node_lo : sub->alive[k - 1];
        sseg.range_hi =
            k == num_segments - 1 ? node_hi : sub->alive[k] + 1;
        AttrId x = shared_x;
        if (x == kInvalidAttr) {
          const int full_lo = k == 0 ? sseg.range_lo : sseg.range_lo + 1;
          const int full_hi = k == 0 ? sseg.range_hi - 1 : sseg.range_hi;
          ChildRestriction r{an.attr, true, full_lo, full_hi, nullptr, 1};
          x = PredictChildX(seg->bundle, an.attr_est, r);
        }
        int lo = 0;
        int hi = grids_[x].num_intervals();
        if (sub_on_x && x == an.attr && num_segments == 2) {
          lo = sseg.range_lo;
          hi = sseg.range_hi;
        } else if (sub_on_x && x == an.attr) {
          lo = node_lo;
          hi = node_hi;
        } else if (x == seg->bundle.x_attr()) {
          // The sub-node's records stay inside the parent segment's X
          // range even when the nested split is on another attribute.
          lo = seg->bundle.x_lo();
          hi = seg->bundle.x_hi();
        }
        sseg.bundle = MakeFreshBundle(x, lo, hi);
        sseg.bundle_fresh = true;
        sseg.plan = PlanKind::kGrow;
      }
      seg->plan = PlanKind::kPending;
      seg->sub = std::move(sub);
      return;
    }
    case BundleAnalysis::Decision::kNumericExact:
    case BundleAnalysis::Decision::kCategorical:
    case BundleAnalysis::Decision::kLinear: {
      seg->plan = PlanKind::kExact;
      AttrId lx = kInvalidAttr;
      AttrId rx = kInvalidAttr;
      if (an.decision == BundleAnalysis::Decision::kNumericExact) {
        seg->exact_split = Split::Numeric(an.attr, an.fallback_threshold);
        const int cut = grids_[an.attr].IntervalOf(an.fallback_threshold);
        ChildRestriction left_r{an.attr, true, 0, cut + 1, nullptr, 1};
        ChildRestriction right_r{an.attr, true, cut + 1,
                                 grids_[an.attr].num_intervals(), nullptr,
                                 1};
        lx = PredictChildX(seg->bundle, an.attr_est, left_r);
        rx = PredictChildX(seg->bundle, an.attr_est, right_r);
      } else if (an.decision == BundleAnalysis::Decision::kCategorical) {
        seg->exact_split = Split::Categorical(an.attr, an.cat.left_subset);
        ChildRestriction left_r{an.attr, false, 0, 0,
                                &seg->exact_split.left_subset, 1};
        ChildRestriction right_r{an.attr, false, 0, 0,
                                 &seg->exact_split.left_subset, 0};
        lx = PredictChildX(seg->bundle, an.attr_est, left_r);
        rx = PredictChildX(seg->bundle, an.attr_est, right_r);
      } else {
        seg->exact_split = an.linear_split;
        lx = rx = PredictX(an);
      }
      seg->exact_left = MakeFreshBundle(lx, 0, grids_[lx].num_intervals());
      seg->exact_right = MakeFreshBundle(rx, 0, grids_[rx].num_intervals());
      seg->exact_left_counts.assign(schema_.num_classes(), 0);
      seg->exact_right_counts.assign(schema_.num_classes(), 0);
      return;
    }
  }
}

template <class Store>
bool CmpBuild<Store>::RoutePending(Pending* p, RecordId r) {
  const double v = store_.numeric(p->attr, r);
  const int iv = grids_[p->attr].IntervalOf(v);
  int k = 0;
  for (int a : p->alive) {
    if (iv == a) {
      p->buffer.push_back({r, v, store_.label(r)});
      return true;
    }
    if (iv > a) ++k;
  }
  Segment& seg = p->segments[k];
  seg.counts[store_.label(r)]++;
  switch (seg.plan) {
    case PlanKind::kGrow:
      if (seg.bundle_fresh) seg.bundle.Add(store_, grids_, r);
      break;
    case PlanKind::kPending:
      return RoutePending(seg.sub.get(), r);
    case PlanKind::kExact:
      if (seg.exact_split.RoutesLeft(store_, r)) {
        seg.exact_left_counts[store_.label(r)]++;
        seg.exact_left.Add(store_, grids_, r);
      } else {
        seg.exact_right_counts[store_.label(r)]++;
        seg.exact_right.Add(store_, grids_, r);
      }
      break;
  }
  return false;
}

template <class Store>
void CmpBuild<Store>::FlushIntoSegment(Segment* seg, RecordId r) {
  seg->counts[store_.label(r)]++;
  switch (seg->plan) {
    case PlanKind::kGrow:
      seg->bundle.Add(store_, grids_, r);
      break;
    case PlanKind::kPending:
      // A flushed record can land in a nested pending's buffer; it was
      // already stashed when it was first buffered, so the nested
      // resolve (later this round) can still read it.
      RoutePending(seg->sub.get(), r);
      break;
    case PlanKind::kExact:
      if (seg->exact_split.RoutesLeft(store_, r)) {
        seg->exact_left_counts[store_.label(r)]++;
        seg->exact_left.Add(store_, grids_, r);
      } else {
        seg->exact_right_counts[store_.label(r)]++;
        seg->exact_right.Add(store_, grids_, r);
      }
      break;
  }
}

template <class Store>
void CmpBuild<Store>::ResolvePending(NodeId id, Pending* p, int depth) {
  const std::vector<int64_t> totals = result_->tree.node(id).class_counts;
  const int nc = schema_.num_classes();
  const int64_t n = Sum(totals);
  const int num_alive = static_cast<int>(p->alive.size());

  tracker_.ChargeBuffered(static_cast<int64_t>(p->buffer.size()));
  tracker_.ChargeSort(static_cast<int64_t>(p->buffer.size()));
  SortBuffer(&p->buffer);

  // Group buffered records by alive interval (sorted by value => groups
  // are contiguous and ascending).
  std::vector<std::pair<size_t, size_t>> groups(num_alive, {0, 0});
  {
    size_t pos = 0;
    for (int k = 0; k < num_alive; ++k) {
      const size_t begin = pos;
      while (pos < p->buffer.size() &&
             grids_[p->attr].IntervalOf(p->buffer[pos].value) == p->alive[k]) {
        ++pos;
      }
      groups[k] = {begin, pos};
    }
  }

  // Walk: segment 0, alive 0, segment 1, alive 1, ..., last segment.
  // Candidates: every alive-interval edge cut and every distinct
  // buffered value.
  double best_gini = std::numeric_limits<double>::infinity();
  double best_threshold = 0.0;
  int best_s_left = -1;
  size_t best_buf_left = 0;  // buffered records (global index) on the left
  std::vector<int64_t> best_left_counts;

  std::vector<int64_t> below(nc, 0);
  auto candidate = [&](double threshold, int s_left, size_t buf_left) {
    int64_t left_n = 0;
    for (int64_t c : below) left_n += c;
    if (left_n <= 0 || left_n >= n) return;
    const double g = BoundaryGini(below, totals);
    if (g < best_gini) {
      best_gini = g;
      best_threshold = threshold;
      best_s_left = s_left;
      best_buf_left = buf_left;
      best_left_counts = below;
    }
  };

  for (int k = 0; k < num_alive; ++k) {
    for (ClassId c = 0; c < nc; ++c) below[c] += p->segments[k].counts[c];
    // Lower edge of alive interval k (cut index alive[k]-1).
    if (p->alive[k] >= 1) {
      candidate(CutValue(p->attr, p->alive[k] - 1), k + 1, groups[k].first);
    }
    for (size_t i = groups[k].first; i < groups[k].second; ++i) {
      below[p->buffer[i].label]++;
      const bool last_of_value = i + 1 >= groups[k].second ||
                                 p->buffer[i + 1].value !=
                                     p->buffer[i].value;
      if (last_of_value) {
        candidate(p->buffer[i].value, k + 1, i + 1);
      }
    }
    // Upper edge (cut index alive[k]); skip when it falls beyond the
    // grid (last interval has no upper cut).
    if (p->alive[k] <
        static_cast<int>(grids_[p->attr].boundaries().size())) {
      candidate(CutValue(p->attr, p->alive[k]), k + 1, groups[k].second);
    }
  }

  if (best_s_left < 0) {
    // Degenerate: every candidate puts all records on one side (e.g. the
    // node's records share a single value inside the alive interval).
    // The committed attribute cannot split this node; fall back to
    // collecting the node's records next scan and finishing it with the
    // exact in-memory builder.
    next_collect_.push_back({id, {}});
    return;
  }

  // ---- Merge segments into the two children and flush the buffer.
  std::vector<int64_t> right_counts(nc);
  for (ClassId c = 0; c < nc; ++c) {
    right_counts[c] = totals[c] - best_left_counts[c];
  }
  const NodeId left_id = AddChild(best_left_counts, depth + 1);
  const NodeId right_id = AddChild(right_counts, depth + 1);
  TreeNode& parent = result_->tree.mutable_node(id);
  parent.is_leaf = false;
  parent.split = Split::Numeric(p->attr, best_threshold);
  parent.left = left_id;
  parent.right = right_id;

  auto merge_side = [&](int seg_begin, int seg_end) -> Segment {
    // Move the first segment out and merge the others into it. Segments
    // on one side share the bundle shape except for bivariate X-range
    // bundles, which only occur in the 1-alive derived case where each
    // side is exactly one segment (no merge needed).
    Segment merged = std::move(p->segments[seg_begin]);
    for (int k = seg_begin + 1; k < seg_end; ++k) {
      Segment& other = p->segments[k];
      for (ClassId c = 0; c < nc; ++c) merged.counts[c] += other.counts[c];
      // Only kGrow fresh full-shape bundles can need merging.
      assert(merged.plan == PlanKind::kGrow &&
             other.plan == PlanKind::kGrow);
      merged.bundle.MergeSameShape(other.bundle);
    }
    return merged;
  };

  Segment left_seg = merge_side(0, best_s_left);
  Segment right_seg = merge_side(best_s_left, num_alive + 1);

  for (size_t i = 0; i < p->buffer.size(); ++i) {
    FlushIntoSegment(i < best_buf_left ? &left_seg : &right_seg,
                     p->buffer[i].rid);
  }
  p->buffer.clear();

  // ---- Materialize each side.
  auto finish_side = [&](NodeId child_id, Segment& seg) {
    switch (seg.plan) {
      case PlanKind::kGrow:
        GrowNode(child_id, std::move(seg.bundle), seg.bundle_fresh);
        break;
      case PlanKind::kPending:
        ResolvePending(child_id, seg.sub.get(), depth + 1);
        break;
      case PlanKind::kExact: {
        const int64_t ln = Sum(seg.exact_left_counts);
        const int64_t rn = Sum(seg.exact_right_counts);
        if (ln == 0 || rn == 0) {
          // The planned split turned out degenerate on the real records;
          // fall back to growing whichever side has everything.
          GrowNode(child_id, ln == 0 ? std::move(seg.exact_right)
                                     : std::move(seg.exact_left));
          break;
        }
        const NodeId gl = AddChild(seg.exact_left_counts, depth + 2);
        const NodeId gr = AddChild(seg.exact_right_counts, depth + 2);
        TreeNode& child = result_->tree.mutable_node(child_id);
        child.is_leaf = false;
        child.split = seg.exact_split;
        child.left = gl;
        child.right = gr;
        GrowNode(gl, std::move(seg.exact_left));
        GrowNode(gr, std::move(seg.exact_right));
        break;
      }
    }
  };
  finish_side(left_id, left_seg);
  finish_side(right_id, right_seg);
}

template <class Store>
bool CmpBuild<Store>::WouldAnalyze(NodeId id,
                            const std::vector<int64_t>& totals) const {
  const int64_t n = Sum(totals);
  const int depth = result_->tree.node(id).depth;
  if (n == 0 || IsPure(totals) || n < options_.base.min_split_records ||
      depth >= options_.base.max_depth ||
      (options_.base.prune &&
       ShouldPruneBeforeExpand(totals, schema_.num_attrs()))) {
    return false;
  }
  return options_.base.in_memory_threshold <= 0 ||
         n > options_.base.in_memory_threshold;
}

template <class Store>
void CmpBuild<Store>::GrowNode(NodeId id, HistBundle&& bundle, bool predicted,
                        const BundleAnalysis* pre) {
  const std::vector<int64_t> totals = bundle.ClassTotals();
  const int64_t n = Sum(totals);
  // Correct the node's (possibly approximate) metadata with the exact
  // counts from its own histograms. An empty node (a linear split can
  // route everything one way) keeps its seeded counts so its leaf class
  // stays the parent's majority.
  if (n > 0) {
    TreeNode& node = result_->tree.mutable_node(id);
    node.class_counts = totals;
    node.leaf_class = Majority(totals);
  }
  const int depth = result_->tree.node(id).depth;

  if (n == 0 || IsPure(totals) || n < options_.base.min_split_records ||
      depth >= options_.base.max_depth ||
      (options_.base.prune &&
       ShouldPruneBeforeExpand(totals, schema_.num_attrs()))) {
    MakeLeaf(id);
    return;
  }
  if (options_.base.in_memory_threshold > 0 &&
      n <= options_.base.in_memory_threshold) {
    next_collect_.push_back({id, {}});
    return;
  }

  // All-pairs extension: if the initial pass found a pairwise linear
  // relation at the root that the shared-X matrices cannot see, adopt it
  // when it beats the best univariate split by the usual margin.
  if (id == 0 && !root_relations_.empty()) {
    const BundleAnalysis probe = pre != nullptr ? *pre
                                                : Analyze(bundle, totals);
    double best_uni = std::numeric_limits<double>::infinity();
    for (double est : probe.attr_est) best_uni = std::min(best_uni, est);
    const PairRelation& rel = root_relations_.front();
    if (rel.gini < (1.0 - options_.linear_gain) * best_uni &&
        best_uni > options_.linear_skip_gini) {
      std::vector<int64_t> left_counts(schema_.num_classes(), 0);
      std::vector<int64_t> right_counts(schema_.num_classes(), 0);
      for (ClassId c = 0; c < schema_.num_classes(); ++c) {
        left_counts[c] = totals[c] / 2;
        right_counts[c] = totals[c] - left_counts[c];
      }
      const NodeId left_id = AddChild(left_counts, depth + 1);
      const NodeId right_id = AddChild(right_counts, depth + 1);
      TreeNode& node = result_->tree.mutable_node(id);
      node.is_leaf = false;
      node.split = rel.split;
      node.left = left_id;
      node.right = right_id;
      const AttrId x = PredictX(probe);
      next_fresh_.push_back(
          {left_id, MakeFreshBundle(x, 0, grids_[x].num_intervals())});
      next_fresh_.push_back(
          {right_id, MakeFreshBundle(x, 0, grids_[x].num_intervals())});
      return;
    }
  }

  // A pre-computed analysis (parallel frontier phase) substitutes for the
  // inline call bit-for-bit: Analyze is a pure function of the bundle and
  // totals.
  BundleAnalysis local_an;
  if (pre == nullptr) local_an = Analyze(bundle, totals);
  const BundleAnalysis& an = pre != nullptr ? *pre : local_an;

  // Prediction bookkeeping: a fresh bivariate bundle's X axis was chosen
  // by predictSplit; a hit means the split landed on the X axis.
  if (predicted && bundle.bivariate() &&
      an.decision != BundleAnalysis::Decision::kNone) {
    result_->stats.predictions_total++;
    if (an.attr == bundle.x_attr()) result_->stats.predictions_correct++;
    if (std::getenv("CMP_TRACE_PREDICT") != nullptr) {
      std::fprintf(stderr, "PREDICT node=%d n=%lld predicted=%d chosen=%d\n",
                   id, static_cast<long long>(n), bundle.x_attr(), an.attr);
    }
  }

  switch (an.decision) {
    case BundleAnalysis::Decision::kNone:
      MakeLeaf(id);
      return;

    case BundleAnalysis::Decision::kNumericPending: {
      if (id == 0) {
        result_->stats.root_alive_intervals =
            static_cast<int64_t>(an.alive.size());
      }
      auto pending = MakePending(bundle, an, depth);
      next_pending_.push_back({id, std::move(pending)});
      return;
    }

    case BundleAnalysis::Decision::kNumericExact: {
      if (an.fallback_gini >= Gini(totals) - 1e-12) {
        MakeLeaf(id);
        return;
      }
      std::vector<int64_t> right_counts(schema_.num_classes());
      for (ClassId c = 0; c < schema_.num_classes(); ++c) {
        right_counts[c] = totals[c] - an.exact_left_counts[c];
      }
      if (Sum(an.exact_left_counts) == 0 || Sum(right_counts) == 0) {
        MakeLeaf(id);
        return;
      }
      const NodeId left_id = AddChild(an.exact_left_counts, depth + 1);
      const NodeId right_id = AddChild(right_counts, depth + 1);
      TreeNode& node = result_->tree.mutable_node(id);
      node.is_leaf = false;
      node.split = Split::Numeric(an.attr, an.fallback_threshold);
      node.left = left_id;
      node.right = right_id;

      if (bundle.bivariate() && an.attr == bundle.x_attr()) {
        // Exact boundary split on the X axis: the children's matrices
        // are sub-matrices — grow them immediately, no scan needed.
        const int cut = grids_[an.attr].IntervalOf(an.fallback_threshold);
        HistBundle left_b =
            bundle.DeriveXRange(bundle.x_lo(), cut + 1, bundle.x_lo(),
                                cut + 1);
        HistBundle right_b =
            bundle.DeriveXRange(cut + 1, bundle.x_hi(), cut + 1,
                                bundle.x_hi());
        GrowNode(left_id, std::move(left_b), /*predicted=*/false);
        GrowNode(right_id, std::move(right_b), /*predicted=*/false);
      } else if (bivariate()) {
        // Exact split on a Y attribute: children need a scan; predict
        // each child's X axis from the restricted (X, attr) matrix.
        const int cut = grids_[an.attr].IntervalOf(an.fallback_threshold);
        ChildRestriction left_r{an.attr, true, 0, cut + 1, nullptr, 1};
        ChildRestriction right_r{an.attr, true, cut + 1,
                                 grids_[an.attr].num_intervals(), nullptr,
                                 1};
        const AttrId lx = PredictChildX(bundle, an.attr_est, left_r);
        const AttrId rx = PredictChildX(bundle, an.attr_est, right_r);
        next_fresh_.push_back(
            {left_id, MakeFreshBundle(lx, 0, grids_[lx].num_intervals())});
        next_fresh_.push_back(
            {right_id,
             MakeFreshBundle(rx, 0, grids_[rx].num_intervals())});
      } else {
        next_fresh_.push_back(
            {left_id, HistBundle::MakeUnivariate(schema_, grids_)});
        next_fresh_.push_back(
            {right_id, HistBundle::MakeUnivariate(schema_, grids_)});
      }
      return;
    }

    case BundleAnalysis::Decision::kCategorical:
    case BundleAnalysis::Decision::kLinear: {
      Split split;
      std::vector<int64_t> left_counts;
      if (an.decision == BundleAnalysis::Decision::kCategorical) {
        split = Split::Categorical(an.attr, an.cat.left_subset);
        left_counts = an.exact_left_counts;
      } else {
        split = an.linear_split;
        // Linear child counts are not derivable from the matrix alone
        // (cells crossed by the line split both ways); seed with a
        // half/half guess, corrected when the children's bundles are
        // analyzed after the next scan.
        left_counts.assign(schema_.num_classes(), 0);
        for (ClassId c = 0; c < schema_.num_classes(); ++c) {
          left_counts[c] = totals[c] / 2;
        }
      }
      std::vector<int64_t> right_counts(schema_.num_classes());
      for (ClassId c = 0; c < schema_.num_classes(); ++c) {
        right_counts[c] = totals[c] - left_counts[c];
      }
      if (an.decision == BundleAnalysis::Decision::kCategorical &&
          (Sum(left_counts) == 0 || Sum(right_counts) == 0)) {
        MakeLeaf(id);
        return;
      }
      const NodeId left_id = AddChild(left_counts, depth + 1);
      const NodeId right_id = AddChild(right_counts, depth + 1);
      TreeNode& node = result_->tree.mutable_node(id);
      node.is_leaf = false;
      node.split = split;
      node.left = left_id;
      node.right = right_id;
      if (bivariate()) {
        AttrId lx;
        AttrId rx;
        if (an.decision == BundleAnalysis::Decision::kCategorical) {
          ChildRestriction left_r{an.attr, false, 0, 0,
                                  &node.split.left_subset, 1};
          ChildRestriction right_r{an.attr, false, 0, 0,
                                   &node.split.left_subset, 0};
          lx = PredictChildX(bundle, an.attr_est, left_r);
          rx = PredictChildX(bundle, an.attr_est, right_r);
        } else {
          // Linear splits cut the matrix diagonally; no restricted
          // marginal exists, so fall back to parent-level estimates.
          lx = rx = PredictX(an);
        }
        next_fresh_.push_back(
            {left_id, MakeFreshBundle(lx, 0, grids_[lx].num_intervals())});
        next_fresh_.push_back(
            {right_id,
             MakeFreshBundle(rx, 0, grids_[rx].num_intervals())});
      } else {
        next_fresh_.push_back(
            {left_id, HistBundle::MakeUnivariate(schema_, grids_)});
        next_fresh_.push_back(
            {right_id, HistBundle::MakeUnivariate(schema_, grids_)});
      }
      return;
    }
  }
}

template <class Store>
void CmpBuild<Store>::ScanRange(int64_t begin, int64_t end, int num_nodes,
                                const std::vector<int>& fresh_slot,
                                const std::vector<int>& pending_slot,
                                const std::vector<int>& collect_slot,
                                std::vector<HistBundle*>& fresh_sink,
                                std::vector<Pending*>& pending_sink,
                                std::vector<std::vector<RecordId>*>& collect_sink,
                                std::vector<RecordId>* retain) {
  for (RecordId r = static_cast<RecordId>(begin); r < end; ++r) {
    NodeId id = nid_[r];
    // Descend through every split resolved since the last scan.
    while (true) {
      const TreeNode& node = result_->tree.node(id);
      if (node.is_leaf || node.left == kInvalidNode) break;
      id = node.split.RoutesLeft(store_, r) ? node.left : node.right;
    }
    nid_[r] = id;
    if (id < num_nodes) {
      const int fs = fresh_slot[id];
      if (fs >= 0) {
        fresh_sink[fs]->Add(store_, grids_, r);
        continue;
      }
      const int ps = pending_slot[id];
      if (ps >= 0) {
        if (RoutePending(pending_sink[ps], r) && retain != nullptr) {
          retain->push_back(r);
        }
        continue;
      }
      const int cs = collect_slot[id];
      if (cs >= 0) {
        collect_sink[cs]->push_back(r);
        if (retain != nullptr) retain->push_back(r);
      }
    }
  }
}

template <class Store>
void CmpBuild<Store>::Run() {
  Timer timer;
  const int64_t n = source_.num_records();
  result_->tree = DecisionTree(schema_);

  // Streamed builds report the bytes the scanner actually pulled from
  // the file instead of the disk-simulation charges.
  if (Store::kStreaming) tracker_.set_real_io(true);
  int64_t real_bytes_charged = 0;
  auto charge_real_bytes = [&] {
    if (!Store::kStreaming) return;
    const int64_t total = source_.bytes_read();
    tracker_.ChargeRealBytes(total - real_bytes_charged);
    real_bytes_charged = total;
  };

  TreeNode root;
  root.depth = 0;
  if (const Dataset* full = store_.dataset()) {
    root.class_counts = full->ClassCounts();
  } else {
    std::vector<ClassId> labels;
    if (!source_.ReadLabels(&labels)) {
      throw std::runtime_error("cmp: failed to read label column");
    }
    root.class_counts.assign(schema_.num_classes(), 0);
    for (ClassId c : labels) root.class_counts[c]++;
  }
  root.leaf_class = Majority(root.class_counts);
  const NodeId root_id = result_->tree.AddNode(std::move(root));
  if (n == 0) {
    MakeLeaf(root_id);
    result_->stats.wall_seconds = timer.Seconds();
    return;
  }

  numeric_attrs_ = schema_.NumericAttrs();

  // Discretization pass: one column read and ONE sort per numeric
  // attribute serve both the quantile grid and the interior-splittable
  // marks (an interval is *interior* iff it holds at least two distinct
  // training values — tie buckets collapse to a single value, so the
  // gradient estimate must be clamped there and the interval never
  // selected as alive). Grids depend only on the sorted value multiset,
  // so the streamed and in-memory builds produce identical grids — the
  // first link of the streamed-equals-in-memory determinism argument.
  tracker_.ChargeScan(n, schema_);
  grids_.assign(schema_.num_attrs(), IntervalGrid());
  interior_.assign(schema_.num_attrs(), {});
  auto build_attr = [&](AttrId a) {
    std::vector<double> sorted;
    if (!source_.ReadNumericColumn(a, &sorted)) {
      throw std::runtime_error("cmp: failed to read numeric column");
    }
    std::sort(sorted.begin(), sorted.end());
    grids_[a] =
        options_.discretization == Discretization::kEqualDepth
            ? IntervalGrid::EqualDepthFromSorted(sorted, options_.intervals)
            : IntervalGrid::EqualWidthFromSorted(sorted, options_.intervals);
    interior_[a].assign(grids_[a].num_intervals(), 0);
    const std::vector<double>& cuts = grids_[a].boundaries();
    size_t bi = 0;
    double first_in_interval = sorted.empty() ? 0.0 : sorted[0];
    size_t interval_start_bi = 0;
    for (double v : sorted) {
      while (bi < cuts.size() && v > cuts[bi]) ++bi;
      if (bi != interval_start_bi) {
        interval_start_bi = bi;
        first_in_interval = v;
      } else if (v != first_in_interval) {
        interior_[a][bi] = 1;
      }
    }
  };
  if (pool_->parallelism() > 1 && numeric_attrs_.size() > 1) {
    pool_->ParallelFor(static_cast<int64_t>(numeric_attrs_.size()), 1,
                       [&](int64_t lo, int64_t hi) {
                         for (int64_t i = lo; i < hi; ++i) {
                           build_attr(numeric_attrs_[i]);
                         }
                       });
  } else {
    for (AttrId a : numeric_attrs_) build_attr(a);
  }
  if (options_.discretization == Discretization::kEqualDepth) {
    for (size_t i = 0; i < numeric_attrs_.size(); ++i) {
      tracker_.ChargeSort(n);
    }
  }
  charge_real_bytes();

  if (options_.all_pairs_root && options_.variant == CmpVariant::kFull) {
    // All-pairs discovery needs simultaneous random access to every
    // numeric column; it is an in-memory-only extension (off by
    // default) and is skipped for streamed builds.
    if (const Dataset* full = store_.dataset()) {
      PairDiscoveryOptions pd;
      pd.min_gain = options_.linear_gain;
      root_relations_ = DiscoverLinearRelations(*full, pd, &tracker_);
    }
  }

  nid_.assign(n, root_id);

  if (options_.base.in_memory_threshold > 0 &&
      n <= options_.base.in_memory_threshold) {
    collect_.push_back({root_id, {}});
  } else if (bivariate()) {
    const AttrId x = numeric_attrs_.front();
    fresh_.push_back({root_id, HistBundle::MakeBivariate(
                                   schema_, grids_, x, 0,
                                   grids_[x].num_intervals())});
  } else {
    fresh_.push_back({root_id, HistBundle::MakeUnivariate(schema_, grids_)});
  }

  while (!fresh_.empty() || !pending_.empty() || !collect_.empty()) {
    tracker_.ChargeScan(n, schema_);
    tracker_.ChargeWrite(n * static_cast<int64_t>(sizeof(NodeId)));

    // Slot maps for the scan.
    const int num_nodes = result_->tree.num_nodes();
    std::vector<int> fresh_slot(num_nodes, -1);
    std::vector<int> pending_slot(num_nodes, -1);
    std::vector<int> collect_slot(num_nodes, -1);
    for (size_t i = 0; i < fresh_.size(); ++i) {
      fresh_slot[fresh_[i].node] = static_cast<int>(i);
    }
    for (size_t i = 0; i < pending_.size(); ++i) {
      pending_slot[pending_[i].node] = static_cast<int>(i);
    }
    for (size_t i = 0; i < collect_.size(); ++i) {
      collect_slot[collect_[i].node] = static_cast<int>(i);
    }

    {
      int64_t mem = GridsMemoryBytes(grids_) +
                    n * static_cast<int64_t>(sizeof(NodeId)) +
                    source_.resident_bytes();
      for (const FreshWork& w : fresh_) mem += w.bundle.MemoryBytes();
      for (const PendingWork& w : pending_) mem += w.pending->MemoryBytes();
      tracker_.NotePeakMemory(mem);
    }

    // The scan routes each record through the (read-only) tree and
    // accumulates it into exactly one sink. Shard 0 scans directly into
    // the master work lists; every other shard gets a private empty
    // mirror of each sink, scans its own contiguous record range, and is
    // merged back in shard order below. Integer count merges are exact
    // and buffer/rid concatenation in shard order reproduces the serial
    // ascending-record order, so the post-merge state — and therefore
    // the tree — is bit-identical for any shard count.
    std::vector<HistBundle*> fresh_sink(fresh_.size());
    for (size_t i = 0; i < fresh_.size(); ++i) {
      fresh_sink[i] = &fresh_[i].bundle;
    }
    std::vector<Pending*> pending_sink(pending_.size());
    for (size_t i = 0; i < pending_.size(); ++i) {
      pending_sink[i] = pending_[i].pending.get();
    }
    std::vector<std::vector<RecordId>*> collect_sink(collect_.size());
    for (size_t i = 0; i < collect_.size(); ++i) {
      collect_sink[i] = &collect_[i].rids;
    }

    // Shard mirrors persist across every block of the pass and are
    // merged once at its end. The block-major accumulation order is
    // harmless: count merges are commutative integer adds, pending
    // buffers are (value, rid)-sorted before use, and collect rid
    // lists are re-sorted ascending below — so the merged state, and
    // therefore the tree, cannot depend on the block size or the
    // thread count.
    const int num_shards =
        static_cast<int>(std::min<int64_t>(pool_->parallelism(), n));
    struct ScanShard {
      std::vector<HistBundle> fresh;
      std::vector<std::unique_ptr<Pending>> pending;
      std::vector<std::vector<RecordId>> collect;
      std::vector<RecordId> retain;
    };
    std::vector<ScanShard> shards(num_shards > 1 ? num_shards - 1 : 0);
    if (!shards.empty()) {
      // The clones read only shape fields the scan never mutates, so
      // per-shard mirror construction fans out.
      const int nc = schema_.num_classes();
      pool_->ParallelFor(static_cast<int64_t>(shards.size()), 1,
                         [&](int64_t lo, int64_t hi) {
                           for (int64_t s = lo; s < hi; ++s) {
                             ScanShard& sh = shards[s];
                             sh.fresh.reserve(fresh_.size());
                             for (size_t i = 0; i < fresh_.size(); ++i) {
                               sh.fresh.push_back(
                                   fresh_[i].bundle.CloneEmptyShape());
                             }
                             sh.pending.reserve(pending_.size());
                             for (size_t i = 0; i < pending_.size(); ++i) {
                               sh.pending.push_back(ClonePendingEmpty(
                                   *pending_[i].pending, nc));
                             }
                             sh.collect.resize(collect_.size());
                           }
                         });
    }
    std::vector<RecordId> master_retain;
    std::vector<RecordId>* const master_retain_ptr =
        Store::kStreaming ? &master_retain : nullptr;

    source_.Reset();
    BlockView view;
    int64_t scanned = 0;
    while (source_.NextBlock(&view)) {
      store_.SetBlock(view);
      const int64_t bn = view.count;
      const int shards_here =
          static_cast<int>(std::min<int64_t>(num_shards, bn));
      if (shards_here <= 1) {
        ScanRange(view.begin, view.begin + bn, num_nodes, fresh_slot,
                  pending_slot, collect_slot, fresh_sink, pending_sink,
                  collect_sink, master_retain_ptr);
      } else {
        const int64_t chunk = (bn + shards_here - 1) / shards_here;
        pool_->ParallelFor(shards_here, 1, [&](int64_t lo, int64_t hi) {
          for (int64_t s = lo; s < hi; ++s) {
            const int64_t begin = view.begin + s * chunk;
            const int64_t end =
                std::min<int64_t>(view.begin + bn, begin + chunk);
            if (s == 0) {
              ScanRange(begin, end, num_nodes, fresh_slot, pending_slot,
                        collect_slot, fresh_sink, pending_sink,
                        collect_sink, master_retain_ptr);
              continue;
            }
            ScanShard& sh = shards[s - 1];
            std::vector<HistBundle*> fsink(fresh_.size());
            for (size_t i = 0; i < fresh_.size(); ++i) {
              fsink[i] = &sh.fresh[i];
            }
            std::vector<Pending*> psink(pending_.size());
            for (size_t i = 0; i < pending_.size(); ++i) {
              psink[i] = sh.pending[i].get();
            }
            std::vector<std::vector<RecordId>*> csink(collect_.size());
            for (size_t i = 0; i < collect_.size(); ++i) {
              csink[i] = &sh.collect[i];
            }
            ScanRange(begin, end, num_nodes, fresh_slot, pending_slot,
                      collect_slot, fsink, psink, csink,
                      Store::kStreaming ? &sh.retain : nullptr);
          }
        });
      }
      scanned += bn;
      if constexpr (Store::kStreaming) {
        // Absorb the records that must outlive this block (pending
        // buffers, collect lists — both re-read at resolve time) into
        // the stash while the block's columns are still resident.
        store_.Stash(master_retain);
        master_retain.clear();
        for (ScanShard& sh : shards) {
          store_.Stash(sh.retain);
          sh.retain.clear();
        }
      }
    }
    store_.ClearBlock();
    if (source_.failed() || scanned != n) {
      throw std::runtime_error("cmp: table scan failed mid-pass");
    }
    charge_real_bytes();

    for (ScanShard& sh : shards) {
      for (size_t i = 0; i < fresh_.size(); ++i) {
        fresh_[i].bundle.MergeSameShape(sh.fresh[i]);
      }
      for (size_t i = 0; i < pending_.size(); ++i) {
        MergePendingInto(pending_[i].pending.get(), *sh.pending[i]);
      }
      for (size_t i = 0; i < collect_.size(); ++i) {
        collect_[i].rids.insert(collect_[i].rids.end(),
                                sh.collect[i].begin(), sh.collect[i].end());
      }
    }
    // Restore the ascending record order a serial scan would have
    // produced (identity for the single-block in-memory path; required
    // after block-major accumulation so exact finishing sees records
    // in global order).
    for (CollectWork& w : collect_) {
      std::sort(w.rids.begin(), w.rids.end());
    }

    // Buffered records count toward peak memory (they hold whole
    // records in a disk implementation). The streamed build really does
    // hold them: its stash is the disk implementation's side buffer.
    {
      int64_t buffered = 0;
      for (const PendingWork& w : pending_) {
        buffered += static_cast<int64_t>(w.pending->buffer.size());
      }
      tracker_.NotePeakMemory(buffered * schema_.RecordBytes());
      if constexpr (Store::kStreaming) {
        tracker_.NotePeakMemory(store_.stash_bytes());
      }
    }

    // Finish small partitions in memory. With several independent
    // partitions and a real pool, each subtree is built into a private
    // detached tree (root node copied from the master tree) and grafted
    // back in work-list order; Graft appends the subtree's nodes in
    // their local id order, which is exactly the order the serial
    // in-place build would have appended them, so node ids — and the
    // serialized tree — match the serial build byte for byte.
    if (pool_->parallelism() > 1 && collect_.size() > 1) {
      struct CollectBuild {
        DecisionTree tree;
        BuildStats stats;
      };
      std::vector<CollectBuild> builds(collect_.size());
      pool_->ParallelFor(collect_.size(), 1, [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) {
          CollectBuild& b = builds[i];
          b.tree = DecisionTree(schema_);
          TreeNode root = result_->tree.node(collect_[i].node);
          b.tree.AddNode(std::move(root));
          ScanTracker local(&b.stats);
          local.set_real_io(tracker_.real_io());
          FinishCollect(collect_[i].rids, &b.tree, 0, &local);
        }
      });
      for (size_t i = 0; i < collect_.size(); ++i) {
        tracker_.ChargeBuffered(static_cast<int64_t>(collect_[i].rids.size()));
        result_->stats.Accumulate(builds[i].stats);
        result_->tree.Graft(collect_[i].node, builds[i].tree);
      }
    } else {
      for (CollectWork& w : collect_) {
        tracker_.ChargeBuffered(static_cast<int64_t>(w.rids.size()));
        FinishCollect(w.rids, &result_->tree, w.node, &tracker_);
      }
    }
    collect_.clear();

    next_fresh_.clear();
    next_pending_.clear();
    next_collect_.clear();

    // Frontier phase A: every fresh node's analysis is a pure function
    // of its (now complete) bundle, so the frontier analyzes in
    // parallel. Phase B below applies the results serially in work-list
    // order — node creation order, stats, and tie-breaking are exactly
    // the serial build's.
    std::vector<std::unique_ptr<BundleAnalysis>> pre(fresh_.size());
    if (pool_->parallelism() > 1 && fresh_.size() > 1) {
      pool_->ParallelFor(fresh_.size(), 1, [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) {
          const std::vector<int64_t> totals = fresh_[i].bundle.ClassTotals();
          if (WouldAnalyze(fresh_[i].node, totals)) {
            pre[i] = std::make_unique<BundleAnalysis>(
                Analyze(fresh_[i].bundle, totals));
          }
        }
      });
    }
    // Pending buffers sort to a unique (value, rid) order, so the sorts
    // — the bulk of resolution cost — fan out ahead of the serial
    // resolve walk, which then re-sorts already-sorted buffers for free.
    if (pool_->parallelism() > 1 && !pending_.empty()) {
      std::vector<Pending*> all_pendings;
      for (PendingWork& w : pending_) {
        CollectPendings(w.pending.get(), &all_pendings);
      }
      pool_->ParallelFor(all_pendings.size(), 1,
                         [&](int64_t lo, int64_t hi) {
                           for (int64_t i = lo; i < hi; ++i) {
                             SortBuffer(&all_pendings[i]->buffer);
                           }
                         });
    }

    for (size_t i = 0; i < fresh_.size(); ++i) {
      GrowNode(fresh_[i].node, std::move(fresh_[i].bundle),
               /*predicted=*/true, pre[i].get());
    }
    for (PendingWork& w : pending_) {
      const int depth = result_->tree.node(w.node).depth;
      ResolvePending(w.node, w.pending.get(), depth);
    }

    if constexpr (Store::kStreaming) {
      // Every retained record has been consumed (collect subtrees built,
      // pending splits resolved); the stash restarts empty next round.
      store_.ClearStash();
    }

    fresh_ = std::move(next_fresh_);
    pending_ = std::move(next_pending_);
    collect_ = std::move(next_collect_);
    next_fresh_.clear();
    next_pending_.clear();
    next_collect_.clear();
  }

  if (options_.base.prune) PruneTreeMdl(&result_->tree);
  result_->stats.tree_nodes = result_->tree.num_nodes();
  result_->stats.tree_depth = result_->tree.Depth();
  result_->stats.wall_seconds = timer.Seconds();
}

template <class Store>
void CmpBuild<Store>::FinishCollect(const std::vector<RecordId>& rids,
                                    DecisionTree* tree, NodeId node,
                                    ScanTracker* tracker) {
  if constexpr (!Store::kStreaming) {
    BuildExactSubtree(*store_.dataset(), rids, options_.base, tree, node,
                      tracker, pool_);
  } else {
    // Streamed: the records live in the stash. Materialize them in
    // ascending rid order, so local record i is global record rids[i];
    // BuildExactSubtree depends only on attribute values and the
    // relative record order, both of which this preserves, so the
    // subtree matches the in-memory build's exactly.
    const Dataset local = store_.Materialize(rids);
    std::vector<RecordId> lrids(static_cast<size_t>(local.num_records()));
    std::iota(lrids.begin(), lrids.end(), 0);
    BuildExactSubtree(local, lrids, options_.base, tree, node, tracker,
                      pool_);
  }
}

}  // namespace

BuildResult CmpBuilder::Build(const Dataset& train) {
  BuildResult result;
  std::unique_ptr<ThreadPool> owned;
  ThreadPool* pool = pool_;
  if (pool == nullptr) {
    owned = std::make_unique<ThreadPool>(options_.base.num_threads);
    pool = owned.get();
  }
  // The whole table as one zero-copy block: the block loop degenerates
  // to the classic in-memory scan.
  DatasetBlockSource source(train);
  InMemoryStore store(train);
  CmpBuild<InMemoryStore> build(store, source, options_, pool, &result);
  build.Run();
  return result;
}

BuildResult CmpBuilder::BuildStreamed(BlockSource& source, bool prefetch) {
  BuildResult result;
  std::unique_ptr<ThreadPool> owned;
  ThreadPool* pool = pool_;
  if (pool == nullptr) {
    owned = std::make_unique<ThreadPool>(options_.base.num_threads);
    pool = owned.get();
  }
  source.set_prefetch_pool(
      prefetch && pool->num_threads() > 0 ? pool : nullptr);
  StreamStore store(source.schema(), source.num_records());
  CmpBuild<StreamStore> build(store, source, options_, pool, &result);
  build.Run();
  return result;
}

std::string CmpBuilder::name() const {
  switch (options_.variant) {
    case CmpVariant::kS:
      return "CMP-S";
    case CmpVariant::kB:
      return "CMP-B";
    case CmpVariant::kFull:
      return "CMP";
  }
  return "CMP";
}

CmpOptions CmpSOptions() {
  CmpOptions o;
  o.variant = CmpVariant::kS;
  return o;
}

CmpOptions CmpBOptions() {
  CmpOptions o;
  o.variant = CmpVariant::kB;
  return o;
}

CmpOptions CmpFullOptions() {
  CmpOptions o;
  o.variant = CmpVariant::kFull;
  return o;
}

}  // namespace cmp
