#include "cmp/split_plan.h"

#include <algorithm>

#include "cmp/linear.h"
#include "gini/estimator.h"

namespace cmp {

AttrId SplitPlanner::PredictX(const BundleAnalysis& parent) const {
  AttrId best = numeric_attrs_.front();
  double best_est = std::numeric_limits<double>::infinity();
  for (AttrId a : numeric_attrs_) {
    if (grids_[a].num_intervals() < 2) continue;
    const double est = parent.attr_est.empty() ? 0.0 : parent.attr_est[a];
    if (est < best_est) {
      best_est = est;
      best = a;
    }
  }
  return best;
}

double SplitPlanner::AttrEstFromHist(AttrId a, const Histogram1D& hist,
                                     int offs) const {
  if (hist.num_intervals() < 2) {
    return std::numeric_limits<double>::infinity();
  }
  const AttrAnalysis an = AnalyzeAttribute(hist);
  if (an.best_boundary < 0) {
    return std::numeric_limits<double>::infinity();
  }
  double est = an.gini_min;
  for (int i = 0; i < static_cast<int>(an.interval_est.size()); ++i) {
    if (interior_[a][offs + i] != 0) {
      est = std::min(est, an.interval_est[i]);
    }
  }
  return est;
}

AttrId SplitPlanner::PredictChildX(const HistBundle& parent,
                                   const std::vector<double>& parent_est,
                                   const ChildRestriction& r) const {
  std::vector<double> est = parent_est;
  if (est.empty()) {
    est.assign(schema_.num_attrs(),
               std::numeric_limits<double>::infinity());
  }
  if (parent.bivariate() && r.split_attr != kInvalidAttr) {
    if (r.split_attr == parent.x_attr() && r.is_range) {
      // Split on the X axis: every matrix restricted to the child's X
      // columns gives the child's exact histogram for its Y attribute,
      // and any of them gives the child's X histogram.
      const int lo = r.lo - parent.x_lo();
      const int hi = r.hi - parent.x_lo();
      bool x_done = false;
      for (AttrId a = 0; a < schema_.num_attrs(); ++a) {
        if (a == parent.x_attr() || !schema_.is_numeric(a)) continue;
        const HistogramMatrix& m = parent.matrix(a);
        est[a] = AttrEstFromHist(a, m.MarginalY(lo, hi), 0);
        if (!x_done) {
          est[parent.x_attr()] = AttrEstFromHist(
              parent.x_attr(), m.MarginalX(lo, hi), r.lo);
          x_done = true;
        }
      }
    } else if (r.split_attr != parent.x_attr()) {
      // Split on a Y attribute: the (X, split_attr) matrix restricted to
      // the child's rows gives the child's exact X and split_attr
      // histograms; other attributes keep the parent-level estimate.
      const HistogramMatrix& m = parent.matrix(r.split_attr);
      const Histogram1D hx =
          r.mask != nullptr ? m.MarginalXByYMask(*r.mask, r.want)
                            : m.MarginalXByYRange(r.lo, r.hi);
      est[parent.x_attr()] =
          AttrEstFromHist(parent.x_attr(), hx, parent.x_lo());
      if (schema_.is_numeric(r.split_attr) && r.is_range) {
        est[r.split_attr] = AttrEstFromHist(
            r.split_attr, m.MarginalYByYRange(r.lo, r.hi), r.lo);
      }
    }
  }
  AttrId best = numeric_attrs_.front();
  double best_est = std::numeric_limits<double>::infinity();
  for (AttrId a : numeric_attrs_) {
    if (grids_[a].num_intervals() < 2) continue;
    if (est[a] < best_est) {
      best_est = est[a];
      best = a;
    }
  }
  return best;
}

HistBundle SplitPlanner::MakeFreshBundle(AttrId x_attr, int x_lo,
                                         int x_hi) const {
  if (!bivariate()) return HistBundle::MakeUnivariate(schema_, grids_);
  return HistBundle::MakeBivariate(schema_, grids_, x_attr, x_lo, x_hi);
}

BundleAnalysis SplitPlanner::Analyze(
    const HistBundle& bundle, const std::vector<int64_t>& totals) const {
  (void)totals;  // kept for symmetry with future split criteria
  BundleAnalysis out;
  out.attr_est.assign(schema_.num_attrs(),
                      std::numeric_limits<double>::infinity());

  // Per-attribute scoring (histogram extraction, boundary scan, interval
  // estimates, categorical subset search) touches only that attribute's
  // state, so it fans out across the pool; each slot is written by
  // exactly one worker. The winner is then reduced serially in ascending
  // attribute order — the identical comparison chain the serial loop
  // used, so the chosen attribute (ties included) does not depend on the
  // thread count.
  struct AttrResult {
    bool valid = false;
    bool is_cat = false;
    double est = 0.0;
    AttrAnalysis an;
    Histogram1D hist;
    CategoricalSplit cat;
  };
  std::vector<AttrResult> results(schema_.num_attrs());
  auto score_attr = [&](AttrId a) {
    AttrResult& res = results[a];
    Histogram1D hist = bundle.HistFor(a);
    if (schema_.is_numeric(a)) {
      if (hist.num_intervals() < 2) return;
      AttrAnalysis an = AnalyzeAttribute(hist);
      if (an.best_boundary < 0) return;
      // Clamp the per-interval estimates to intervals that can actually
      // contain an interior split point; a tie bucket's gini cannot drop
      // below its edge boundaries no matter what the gradient walk says.
      const int offs =
          (bundle.bivariate() && a == bundle.x_attr()) ? bundle.x_lo() : 0;
      double est = an.gini_min;
      for (int i = 0; i < static_cast<int>(an.interval_est.size()); ++i) {
        if (interior_[a][offs + i] != 0) {
          est = std::min(est, an.interval_est[i]);
        }
      }
      out.attr_est[a] = est;
      res.valid = true;
      res.est = est;
      res.an = std::move(an);
      res.hist = std::move(hist);
    } else {
      const CategoricalSplit cs = BestCategoricalSplit(hist);
      if (!cs.valid) return;
      out.attr_est[a] = cs.gini;
      res.valid = true;
      res.is_cat = true;
      res.est = cs.gini;
      res.cat = cs;
      res.hist = std::move(hist);
    }
  };
  if (pool_->parallelism() > 1 && schema_.num_attrs() > 1) {
    pool_->ParallelFor(schema_.num_attrs(), 1, [&](int64_t lo, int64_t hi) {
      for (int64_t a = lo; a < hi; ++a) score_attr(static_cast<AttrId>(a));
    });
  } else {
    for (AttrId a = 0; a < schema_.num_attrs(); ++a) score_attr(a);
  }

  double best_est = std::numeric_limits<double>::infinity();
  AttrId best_attr = kInvalidAttr;
  for (AttrId a = 0; a < schema_.num_attrs(); ++a) {
    if (results[a].valid && results[a].est < best_est) {
      best_est = results[a].est;
      best_attr = a;
    }
  }
  if (best_attr == kInvalidAttr) return out;  // kNone: leaf
  AttrAnalysis best_an = std::move(results[best_attr].an);
  Histogram1D best_hist = std::move(results[best_attr].hist);
  CategoricalSplit best_cat = results[best_attr].cat;
  const bool best_is_cat = results[best_attr].is_cat;

  // Linear-combination check (CMP full only): when no univariate split is
  // good enough, look for a splitting line in each matrix.
  if (policy_.search_linear && bundle.bivariate() &&
      best_est > options_.linear_skip_gini) {
    const AttrId x = bundle.x_attr();
    LinearSplitResult best_line;
    AttrId best_line_y = kInvalidAttr;
    for (AttrId y : numeric_attrs_) {
      if (y == x || grids_[y].num_intervals() < 2) continue;
      const LinearSplitResult line = FindBestLine(
          bundle.matrix(y), grids_[x], bundle.x_lo(), grids_[y],
          options_.linear_grid);
      if (line.valid && (!best_line.valid || line.gini < best_line.gini)) {
        best_line = line;
        best_line_y = y;
      }
    }
    if (best_line.valid &&
        best_line.gini < (1.0 - options_.linear_gain) * best_est) {
      // The coarse grid is enough to *detect* a linear relationship;
      // refine the winning matrix at full resolution so the committed
      // line hugs the true boundary (fewer residual fix-up splits).
      const LinearSplitResult refined =
          FindBestLine(bundle.matrix(best_line_y), grids_[x], bundle.x_lo(),
                       grids_[best_line_y],
                       std::max(bundle.matrix(best_line_y).x_intervals(),
                                bundle.matrix(best_line_y).y_intervals()));
      if (refined.valid && refined.gini <= best_line.gini) {
        best_line = refined;
      }
      out.decision = BundleAnalysis::Decision::kLinear;
      out.attr = x;
      out.linear_split = Split::Linear(x, best_line_y, best_line.a,
                                       best_line.b, best_line.c);
      return out;
    }
  }

  if (best_is_cat) {
    out.decision = BundleAnalysis::Decision::kCategorical;
    out.attr = best_attr;
    out.cat = best_cat;
    out.exact_left_counts.assign(schema_.num_classes(), 0);
    for (int v = 0; v < best_hist.num_intervals(); ++v) {
      if (best_cat.left_subset[v] != 0) {
        for (ClassId c = 0; c < schema_.num_classes(); ++c) {
          out.exact_left_counts[c] += best_hist.count(v, c);
        }
      }
    }
    return out;
  }

  // Numeric split on best_attr. Histogram rows are local for a bivariate
  // X attribute: translate to global grid indices.
  const int local_offset =
      (bundle.bivariate() && best_attr == bundle.x_attr()) ? bundle.x_lo()
                                                           : 0;
  const int global_cut = local_offset + best_an.best_boundary;
  out.attr = best_attr;
  out.fallback_threshold = CutValue(best_attr, global_cut);
  out.fallback_gini = best_an.gini_min;

  // Alive interval selection (Section 2.1): the interval with the lowest
  // estimate, plus the interval adjacent to the best boundary (the side
  // with the lower estimate), deduplicated and capped at max_alive. An
  // interval whose estimate cannot beat the boundary minimum is dropped.
  auto has_interior = [&](int local_i) {
    return interior_[best_attr][local_offset + local_i] != 0;
  };
  auto eligible = [&](int i) {
    return i >= 0 && i < static_cast<int>(best_an.interval_est.size()) &&
           has_interior(i) &&
           best_an.interval_est[i] < best_an.gini_min - 1e-12;
  };
  int est_arg = -1;
  double est_arg_val = std::numeric_limits<double>::infinity();
  for (int i = 0; i < static_cast<int>(best_an.interval_est.size()); ++i) {
    if (eligible(i) && best_an.interval_est[i] < est_arg_val) {
      est_arg_val = best_an.interval_est[i];
      est_arg = i;
    }
  }
  // Candidate alive intervals, per Section 2.1: both intervals adjacent
  // to the best boundary (the exact split usually hides just beside it)
  // and the interval with the smallest estimate, lowest-estimate first,
  // capped at max_alive.
  const int b = best_an.best_boundary;  // local cut between b and b+1
  std::vector<int> alive_local;
  auto add_alive = [&](int i) {
    if (!eligible(i)) return;
    for (int existing : alive_local) {
      if (existing == i) return;
    }
    alive_local.push_back(i);
  };
  add_alive(est_arg);
  add_alive(b);
  add_alive(b + 1);
  if (static_cast<int>(alive_local.size()) > options_.max_alive) {
    std::sort(alive_local.begin(), alive_local.end(), [&](int x, int y) {
      return best_an.interval_est[x] < best_an.interval_est[y];
    });
    alive_local.resize(options_.max_alive);
  }
  std::sort(alive_local.begin(), alive_local.end());

  if (alive_local.empty()) {
    out.decision = BundleAnalysis::Decision::kNumericExact;
    out.exact_left_counts = best_hist.PrefixBefore(best_an.best_boundary + 1);
    return out;
  }
  // CMP-B/CMP only grow a second level per scan when an X-axis split has
  // a single alive interval (Figure 10, line 18). When the split lands
  // on the X axis, trade a sliver of split precision for that extra
  // level by keeping only the best-estimated interval — CMP-S keeps the
  // full alive set and stays maximally exact.
  if (policy_.trim_alive_on_x && bundle.bivariate() &&
      best_attr == bundle.x_attr() && alive_local.size() > 1) {
    int keep = alive_local[0];
    for (int i : alive_local) {
      if (best_an.interval_est[i] < best_an.interval_est[keep]) keep = i;
    }
    alive_local = {keep};
  }
  out.decision = BundleAnalysis::Decision::kNumericPending;
  out.alive.reserve(alive_local.size());
  for (int i : alive_local) out.alive.push_back(local_offset + i);
  return out;
}

std::unique_ptr<Pending> SplitPlanner::MakePending(
    const HistBundle& bundle, const BundleAnalysis& analysis,
    int depth) const {
  auto p = std::make_unique<Pending>();
  p->attr = analysis.attr;
  p->alive = analysis.alive;
  const int num_segments = static_cast<int>(p->alive.size()) + 1;
  p->segments.resize(num_segments);

  // Global interval range of the node on the split attribute.
  const bool on_x = bundle.bivariate() && analysis.attr == bundle.x_attr();
  const int node_lo = on_x ? bundle.x_lo() : 0;
  const int node_hi =
      on_x ? bundle.x_hi() : grids_[analysis.attr].num_intervals();

  // Segment k's record range: between alive[k-1] and alive[k],
  // exclusive; its *bundle* range additionally covers the partial alive
  // columns it may receive at flush time.
  for (int k = 0; k < num_segments; ++k) {
    Segment& seg = p->segments[k];
    seg.counts.assign(schema_.num_classes(), 0);
    seg.range_lo = k == 0 ? node_lo : p->alive[k - 1];
    seg.range_hi = k == num_segments - 1 ? node_hi : p->alive[k] + 1;
  }

  const bool double_split = bivariate() && on_x && p->alive.size() == 1 &&
                            depth + 1 < options_.base.max_depth;
  if (double_split) {
    // CMP-B: derive the two subnodes' matrices from the parent's (the
    // alive column stays empty until the buffer is flushed) and plan
    // their own splits right away (Figure 10, line 18).
    const int i1 = p->alive[0];
    Segment& left = p->segments[0];
    Segment& right = p->segments[1];
    left.bundle = bundle.DeriveXRange(left.range_lo, left.range_hi,
                                      left.range_lo, i1);
    right.bundle = bundle.DeriveXRange(right.range_lo, right.range_hi,
                                       i1 + 1, right.range_hi);
    left.bundle_fresh = false;
    right.bundle_fresh = false;
    PlanSegment(&left, depth + 1);
    PlanSegment(&right, depth + 1);
  } else if (!bivariate()) {
    for (int k = 0; k < num_segments; ++k) {
      Segment& seg = p->segments[k];
      seg.bundle = HistBundle::MakeUnivariate(schema_, grids_);
      seg.bundle_fresh = true;
      seg.plan = PlanKind::kGrow;
    }
  } else if (num_segments == 2) {
    // One alive interval: each side of the eventual split is exactly one
    // segment (no merging), so each subnode can get its own predicted
    // X axis (paper Figure 7) and an X range matching its records.
    for (int k = 0; k < num_segments; ++k) {
      Segment& seg = p->segments[k];
      // Prediction sees full columns only; the alive column's records are
      // still unassigned at this point.
      const int full_lo = k == 0 ? seg.range_lo : seg.range_lo + 1;
      const int full_hi = k == 0 ? seg.range_hi - 1 : seg.range_hi;
      ChildRestriction r{analysis.attr, true, full_lo, full_hi, nullptr, 1};
      const AttrId x = PredictChildX(bundle, analysis.attr_est, r);
      int lo = 0;
      int hi = grids_[x].num_intervals();
      if (x == analysis.attr) {
        lo = seg.range_lo;
        hi = seg.range_hi;
      } else if (bundle.bivariate() && x == bundle.x_attr()) {
        lo = bundle.x_lo();
        hi = bundle.x_hi();
      }
      seg.bundle = HistBundle::MakeBivariate(schema_, grids_, x, lo, hi);
      seg.bundle_fresh = true;
      seg.plan = PlanKind::kGrow;
    }
  } else {
    // Two alive intervals: resolution may merge adjacent segments, so
    // every segment needs the SAME bundle shape — use one shared
    // predicted X covering the whole node range.
    const AttrId x = PredictX(analysis);
    int lo = 0;
    int hi = grids_[x].num_intervals();
    if (on_x && x == analysis.attr) {
      lo = node_lo;
      hi = node_hi;
    } else if (bundle.bivariate() && x == bundle.x_attr()) {
      lo = bundle.x_lo();
      hi = bundle.x_hi();
    }
    for (int k = 0; k < num_segments; ++k) {
      Segment& seg = p->segments[k];
      seg.bundle = HistBundle::MakeBivariate(schema_, grids_, x, lo, hi);
      seg.bundle_fresh = true;
      seg.plan = PlanKind::kGrow;
    }
  }
  return p;
}

void SplitPlanner::PlanSegment(Segment* seg, int depth) const {
  const std::vector<int64_t> totals = seg->bundle.ClassTotals();
  // Too small / pure / deep partitions keep the derived bundle and are
  // finished at resolution time.
  if (IsPure(totals) || CountSum(totals) < options_.base.min_split_records ||
      CountSum(totals) <= options_.base.in_memory_threshold ||
      depth >= options_.base.max_depth) {
    seg->plan = PlanKind::kGrow;
    return;
  }
  const BundleAnalysis an = Analyze(seg->bundle, totals);
  switch (an.decision) {
    case BundleAnalysis::Decision::kNone:
      seg->plan = PlanKind::kGrow;
      return;
    case BundleAnalysis::Decision::kNumericPending: {
      // Nested pending: its segments are fresh grandchild bundles.
      auto sub = std::make_unique<Pending>();
      sub->attr = an.attr;
      sub->alive = an.alive;
      const int num_segments = static_cast<int>(an.alive.size()) + 1;
      sub->segments.resize(num_segments);
      const bool sub_on_x = an.attr == seg->bundle.x_attr();
      const int node_lo = sub_on_x ? seg->bundle.x_lo() : 0;
      const int node_hi =
          sub_on_x ? seg->bundle.x_hi() : grids_[an.attr].num_intervals();
      // Predict each grandchild's X axis when merging is impossible
      // (single alive interval); otherwise share one shape.
      AttrId shared_x = kInvalidAttr;
      if (num_segments != 2) shared_x = PredictX(an);
      for (int k = 0; k < num_segments; ++k) {
        Segment& sseg = sub->segments[k];
        sseg.counts.assign(schema_.num_classes(), 0);
        sseg.range_lo = k == 0 ? node_lo : sub->alive[k - 1];
        sseg.range_hi =
            k == num_segments - 1 ? node_hi : sub->alive[k] + 1;
        AttrId x = shared_x;
        if (x == kInvalidAttr) {
          const int full_lo = k == 0 ? sseg.range_lo : sseg.range_lo + 1;
          const int full_hi = k == 0 ? sseg.range_hi - 1 : sseg.range_hi;
          ChildRestriction r{an.attr, true, full_lo, full_hi, nullptr, 1};
          x = PredictChildX(seg->bundle, an.attr_est, r);
        }
        int lo = 0;
        int hi = grids_[x].num_intervals();
        if (sub_on_x && x == an.attr && num_segments == 2) {
          lo = sseg.range_lo;
          hi = sseg.range_hi;
        } else if (sub_on_x && x == an.attr) {
          lo = node_lo;
          hi = node_hi;
        } else if (x == seg->bundle.x_attr()) {
          // The sub-node's records stay inside the parent segment's X
          // range even when the nested split is on another attribute.
          lo = seg->bundle.x_lo();
          hi = seg->bundle.x_hi();
        }
        sseg.bundle = MakeFreshBundle(x, lo, hi);
        sseg.bundle_fresh = true;
        sseg.plan = PlanKind::kGrow;
      }
      seg->plan = PlanKind::kPending;
      seg->sub = std::move(sub);
      return;
    }
    case BundleAnalysis::Decision::kNumericExact:
    case BundleAnalysis::Decision::kCategorical:
    case BundleAnalysis::Decision::kLinear: {
      seg->plan = PlanKind::kExact;
      AttrId lx = kInvalidAttr;
      AttrId rx = kInvalidAttr;
      if (an.decision == BundleAnalysis::Decision::kNumericExact) {
        seg->exact_split = Split::Numeric(an.attr, an.fallback_threshold);
        const int cut = grids_[an.attr].IntervalOf(an.fallback_threshold);
        ChildRestriction left_r{an.attr, true, 0, cut + 1, nullptr, 1};
        ChildRestriction right_r{an.attr, true, cut + 1,
                                 grids_[an.attr].num_intervals(), nullptr,
                                 1};
        lx = PredictChildX(seg->bundle, an.attr_est, left_r);
        rx = PredictChildX(seg->bundle, an.attr_est, right_r);
      } else if (an.decision == BundleAnalysis::Decision::kCategorical) {
        seg->exact_split = Split::Categorical(an.attr, an.cat.left_subset);
        ChildRestriction left_r{an.attr, false, 0, 0,
                                &seg->exact_split.left_subset, 1};
        ChildRestriction right_r{an.attr, false, 0, 0,
                                 &seg->exact_split.left_subset, 0};
        lx = PredictChildX(seg->bundle, an.attr_est, left_r);
        rx = PredictChildX(seg->bundle, an.attr_est, right_r);
      } else {
        seg->exact_split = an.linear_split;
        lx = rx = PredictX(an);
      }
      seg->exact_left = MakeFreshBundle(lx, 0, grids_[lx].num_intervals());
      seg->exact_right = MakeFreshBundle(rx, 0, grids_[rx].num_intervals());
      seg->exact_left_counts.assign(schema_.num_classes(), 0);
      seg->exact_right_counts.assign(schema_.num_classes(), 0);
      return;
    }
  }
}

}  // namespace cmp
