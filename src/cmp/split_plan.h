#ifndef CMP_CMP_SPLIT_PLAN_H_
#define CMP_CMP_SPLIT_PLAN_H_

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <memory>
#include <numeric>
#include <utility>
#include <vector>

#include "cmp/frontier.h"
#include "cmp/options.h"
#include "cmp/pairs.h"
#include "cmp/variant_policy.h"
#include "common/class_counts.h"
#include "common/thread_pool.h"
#include "exact/exact.h"
#include "gini/categorical.h"
#include "gini/gini.h"
#include "io/scan.h"
#include "pruning/mdl.h"
#include "tree/builder.h"

namespace cmp {

/// Split planning of the CMP build pipeline: scoring complete histogram
/// bundles, choosing split decisions (pending / exact / categorical /
/// linear), predicting children's X axes, and materializing decisions
/// into tree nodes and next-round frontier work. The SplitPlanner is
/// pure read-only analysis over histogram state; the SplitExecutor
/// applies its decisions to the tree, which is the only part that needs
/// the record store (buffer flushes re-read records, exact finishing
/// materializes partitions).

/// Per-attribute analysis outcome used for both split selection and
/// prediction.
struct BundleAnalysis {
  // Estimated (numeric) or exact (categorical) gini per attribute; the
  // paper selects the split attribute by this value.
  std::vector<double> attr_est;
  // Decision for the node.
  enum class Decision {
    kNone,            // no valid split: leaf
    kNumericPending,  // approximate split with alive intervals
    kNumericExact,    // boundary split, no interval can beat it
    kCategorical,
    kLinear,
  };
  Decision decision = Decision::kNone;
  AttrId attr = kInvalidAttr;
  // kNumericPending / kNumericExact.
  double fallback_threshold = 0.0;
  double fallback_gini = 1.0;
  std::vector<int> alive;                  // global interval indices
  std::vector<int64_t> exact_left_counts;  // kNumericExact / kCategorical
  // kCategorical.
  CategoricalSplit cat;
  // kLinear.
  Split linear_split;
};

/// How a child restricts the parent's records on the attribute that was
/// just split: a row range for numeric splits, a value mask for
/// categorical ones.
struct ChildRestriction {
  AttrId split_attr = kInvalidAttr;
  bool is_range = false;
  int lo = 0;  // global interval indices on split_attr
  int hi = 0;
  const std::vector<uint8_t>* mask = nullptr;
  uint8_t want = 1;
};

/// Read-only split analysis over the discretized grids. Everything here
/// is a pure function of histogram state (plus the build options), so
/// the frontier pre-analysis phase can call Analyze from worker threads.
class SplitPlanner {
 public:
  /// All references are borrowed and must outlive the planner; `pool`
  /// is never null (the build driver guarantees a pool).
  SplitPlanner(const Schema& schema, const CmpOptions& options,
               const VariantPolicy& policy,
               const std::vector<IntervalGrid>& grids,
               const std::vector<std::vector<char>>& interior,
               const std::vector<AttrId>& numeric_attrs, ThreadPool* pool)
      : schema_(schema),
        options_(options),
        policy_(policy),
        grids_(grids),
        interior_(interior),
        numeric_attrs_(numeric_attrs),
        pool_(pool) {}

  const Schema& schema() const { return schema_; }
  const std::vector<IntervalGrid>& grids() const { return grids_; }

  /// Whether this build accumulates bivariate matrices (policy says so
  /// AND at least one numeric attribute exists to serve as the X axis).
  bool bivariate() const {
    return policy_.use_matrices && !numeric_attrs_.empty();
  }

  /// Cut value of the global grid boundary with index `cut` on attribute
  /// `a` (cut i separates interval i from i+1).
  double CutValue(AttrId a, int cut) const { return grids_[a].UpperCut(cut); }

  /// Chooses the X-axis attribute for a fresh child bundle: the numeric
  /// attribute with the smallest estimated gini at the parent
  /// (predictSplit's fallback row for attributes not on the sub-matrix
  /// axes; see DESIGN.md for the simplification).
  AttrId PredictX(const BundleAnalysis& parent) const;

  /// The paper's predictSplit (Figure 7): exact ginis for the attributes
  /// on the sub-matrix axes (computed from the parent's matrices
  /// restricted to the child's rows), parent-level estimates for the
  /// rest; returns the argmin attribute, which becomes the child's X
  /// axis.
  AttrId PredictChildX(const HistBundle& parent,
                       const std::vector<double>& parent_est,
                       const ChildRestriction& r) const;

  /// Scores one attribute histogram the way Analyze does (boundary
  /// minimum clamped by interior-splittable interval estimates). `offs`
  /// maps local histogram rows to global grid intervals.
  double AttrEstFromHist(AttrId a, const Histogram1D& hist, int offs) const;

  HistBundle MakeFreshBundle(AttrId x_attr, int x_lo, int x_hi) const;

  /// Analyzes a node's complete histogram bundle and picks a split
  /// decision. `totals` are the node's per-class counts.
  BundleAnalysis Analyze(const HistBundle& bundle,
                         const std::vector<int64_t>& totals) const;

  /// Builds the Pending structure for a node whose decision is
  /// kNumericPending.
  std::unique_ptr<Pending> MakePending(const HistBundle& bundle,
                                       const BundleAnalysis& analysis,
                                       int depth) const;

  /// Plans one derived segment of a CMP-B double split.
  void PlanSegment(Segment* seg, int depth) const;

 private:
  const Schema& schema_;
  const CmpOptions& options_;
  VariantPolicy policy_;
  const std::vector<IntervalGrid>& grids_;
  const std::vector<std::vector<char>>& interior_;
  const std::vector<AttrId>& numeric_attrs_;
  ThreadPool* pool_;
};

/// Applies split decisions to the tree: grows analyzed nodes, resolves
/// pending splits against their sorted buffers, and finishes collected
/// in-memory partitions with the exact builder. Emits next-round work
/// into `next`. Templated over the record store because buffer flushes
/// and exact finishing re-read records; all store access is const.
template <class Store>
class SplitExecutor {
 public:
  /// `codes` (nullable) is the build's bin-code cache; buffer flushes
  /// read cached interval indices through it when present.
  SplitExecutor(const SplitPlanner& planner, const Store& store,
                const CmpOptions& options, BuildResult* result,
                ScanTracker* tracker, ThreadPool* pool, FrontierQueues* next,
                const BinCodeCache* codes = nullptr)
      : planner_(planner),
        store_(store),
        options_(options),
        result_(result),
        tracker_(tracker),
        pool_(pool),
        next_(next),
        codes_(codes != nullptr && codes->enabled() ? codes : nullptr) {}

  /// Root-level pairwise linear relations from the all-pairs extension
  /// (may stay empty; see CmpOptions::all_pairs_root).
  void set_root_relations(const std::vector<PairRelation>* relations) {
    root_relations_ = relations;
  }

  /// Whether GrowNode would reach Analyze for a node with these totals
  /// (mirrors its early-out chain); used to skip useless pre-analyses.
  bool WouldAnalyze(NodeId id, const std::vector<int64_t>& totals) const {
    const Schema& schema = planner_.schema();
    const int64_t n = CountSum(totals);
    const int depth = result_->tree.node(id).depth;
    if (n == 0 || IsPure(totals) || n < options_.base.min_split_records ||
        depth >= options_.base.max_depth ||
        (options_.base.prune &&
         ShouldPruneBeforeExpand(totals, schema.num_attrs()))) {
      return false;
    }
    return options_.base.in_memory_threshold <= 0 ||
           n > options_.base.in_memory_threshold;
  }

  /// Applies stop tests + Analyze to a real tree node whose bundle is
  /// complete, materializing children / pendings / collect work.
  /// `predicted` marks bundles whose X axis was chosen by predictSplit
  /// (fresh bundles); derived sub-matrix bundles inherit their X axis and
  /// do not count toward the prediction hit-rate. `pre` optionally hands
  /// in the node's analysis when it was computed ahead of time (frontier
  /// nodes of one level are analyzed in parallel before their serial,
  /// order-preserving application to the tree).
  void GrowNode(NodeId id, HistBundle&& bundle, bool predicted = true,
                const BundleAnalysis* pre = nullptr) {
    const Schema& schema = planner_.schema();
    const std::vector<IntervalGrid>& grids = planner_.grids();
    const std::vector<int64_t> totals = bundle.ClassTotals();
    const int64_t n = CountSum(totals);
    // Correct the node's (possibly approximate) metadata with the exact
    // counts from its own histograms. An empty node (a linear split can
    // route everything one way) keeps its seeded counts so its leaf class
    // stays the parent's majority.
    if (n > 0) {
      TreeNode& node = result_->tree.mutable_node(id);
      node.class_counts = totals;
      node.leaf_class = Majority(totals);
    }
    const int depth = result_->tree.node(id).depth;

    if (n == 0 || IsPure(totals) || n < options_.base.min_split_records ||
        depth >= options_.base.max_depth ||
        (options_.base.prune &&
         ShouldPruneBeforeExpand(totals, schema.num_attrs()))) {
      MakeLeaf(id);
      return;
    }
    if (options_.base.in_memory_threshold > 0 &&
        n <= options_.base.in_memory_threshold) {
      next_->collect.push_back({id, {}});
      return;
    }

    // All-pairs extension: if the initial pass found a pairwise linear
    // relation at the root that the shared-X matrices cannot see, adopt it
    // when it beats the best univariate split by the usual margin.
    if (id == 0 && root_relations_ != nullptr && !root_relations_->empty()) {
      const BundleAnalysis probe =
          pre != nullptr ? *pre : planner_.Analyze(bundle, totals);
      double best_uni = std::numeric_limits<double>::infinity();
      for (double est : probe.attr_est) best_uni = std::min(best_uni, est);
      const PairRelation& rel = root_relations_->front();
      if (rel.gini < (1.0 - options_.linear_gain) * best_uni &&
          best_uni > options_.linear_skip_gini) {
        std::vector<int64_t> left_counts(schema.num_classes(), 0);
        std::vector<int64_t> right_counts(schema.num_classes(), 0);
        for (ClassId c = 0; c < schema.num_classes(); ++c) {
          left_counts[c] = totals[c] / 2;
          right_counts[c] = totals[c] - left_counts[c];
        }
        const NodeId left_id = AddChild(left_counts, depth + 1);
        const NodeId right_id = AddChild(right_counts, depth + 1);
        TreeNode& node = result_->tree.mutable_node(id);
        node.is_leaf = false;
        node.split = rel.split;
        node.left = left_id;
        node.right = right_id;
        const AttrId x = planner_.PredictX(probe);
        PushFreshPair(
            left_id, right_id, std::move(bundle),
            planner_.MakeFreshBundle(x, 0, grids[x].num_intervals()),
            planner_.MakeFreshBundle(x, 0, grids[x].num_intervals()),
            left_counts, right_counts);
        return;
      }
    }

    // A pre-computed analysis (parallel frontier phase) substitutes for
    // the inline call bit-for-bit: Analyze is a pure function of the
    // bundle and totals.
    BundleAnalysis local_an;
    if (pre == nullptr) local_an = planner_.Analyze(bundle, totals);
    const BundleAnalysis& an = pre != nullptr ? *pre : local_an;

    // Prediction bookkeeping: a fresh bivariate bundle's X axis was
    // chosen by predictSplit; a hit means the split landed on the X axis.
    if (predicted && bundle.bivariate() &&
        an.decision != BundleAnalysis::Decision::kNone) {
      result_->stats.predictions_total++;
      if (an.attr == bundle.x_attr()) result_->stats.predictions_correct++;
      if (std::getenv("CMP_TRACE_PREDICT") != nullptr) {
        std::fprintf(stderr,
                     "PREDICT node=%d n=%lld predicted=%d chosen=%d\n", id,
                     static_cast<long long>(n), bundle.x_attr(), an.attr);
      }
    }

    switch (an.decision) {
      case BundleAnalysis::Decision::kNone:
        MakeLeaf(id);
        return;

      case BundleAnalysis::Decision::kNumericPending: {
        if (id == 0) {
          result_->stats.root_alive_intervals =
              static_cast<int64_t>(an.alive.size());
        }
        auto pending = planner_.MakePending(bundle, an, depth);
        next_->pending.push_back({id, std::move(pending)});
        return;
      }

      case BundleAnalysis::Decision::kNumericExact: {
        if (an.fallback_gini >= Gini(totals) - 1e-12) {
          MakeLeaf(id);
          return;
        }
        std::vector<int64_t> right_counts(schema.num_classes());
        for (ClassId c = 0; c < schema.num_classes(); ++c) {
          right_counts[c] = totals[c] - an.exact_left_counts[c];
        }
        if (CountSum(an.exact_left_counts) == 0 ||
            CountSum(right_counts) == 0) {
          MakeLeaf(id);
          return;
        }
        const NodeId left_id = AddChild(an.exact_left_counts, depth + 1);
        const NodeId right_id = AddChild(right_counts, depth + 1);
        TreeNode& node = result_->tree.mutable_node(id);
        node.is_leaf = false;
        node.split = Split::Numeric(an.attr, an.fallback_threshold);
        node.left = left_id;
        node.right = right_id;

        if (bundle.bivariate() && an.attr == bundle.x_attr()) {
          // Exact boundary split on the X axis: the children's matrices
          // are sub-matrices — grow them immediately, no scan needed.
          const int cut = grids[an.attr].IntervalOf(an.fallback_threshold);
          HistBundle left_b = bundle.DeriveXRange(bundle.x_lo(), cut + 1,
                                                  bundle.x_lo(), cut + 1);
          HistBundle right_b = bundle.DeriveXRange(cut + 1, bundle.x_hi(),
                                                   cut + 1, bundle.x_hi());
          GrowNode(left_id, std::move(left_b), /*predicted=*/false);
          GrowNode(right_id, std::move(right_b), /*predicted=*/false);
        } else if (planner_.bivariate()) {
          // Exact split on a Y attribute: children need a scan; predict
          // each child's X axis from the restricted (X, attr) matrix.
          const int cut = grids[an.attr].IntervalOf(an.fallback_threshold);
          ChildRestriction left_r{an.attr, true, 0, cut + 1, nullptr, 1};
          ChildRestriction right_r{an.attr, true, cut + 1,
                                   grids[an.attr].num_intervals(), nullptr,
                                   1};
          const AttrId lx = planner_.PredictChildX(bundle, an.attr_est,
                                                   left_r);
          const AttrId rx = planner_.PredictChildX(bundle, an.attr_est,
                                                   right_r);
          PushFreshPair(
              left_id, right_id, std::move(bundle),
              planner_.MakeFreshBundle(lx, 0, grids[lx].num_intervals()),
              planner_.MakeFreshBundle(rx, 0, grids[rx].num_intervals()),
              an.exact_left_counts, right_counts);
        } else {
          PushFreshPair(left_id, right_id, std::move(bundle),
                        HistBundle::MakeUnivariate(schema, grids),
                        HistBundle::MakeUnivariate(schema, grids),
                        an.exact_left_counts, right_counts);
        }
        return;
      }

      case BundleAnalysis::Decision::kCategorical:
      case BundleAnalysis::Decision::kLinear: {
        Split split;
        std::vector<int64_t> left_counts;
        if (an.decision == BundleAnalysis::Decision::kCategorical) {
          split = Split::Categorical(an.attr, an.cat.left_subset);
          left_counts = an.exact_left_counts;
        } else {
          split = an.linear_split;
          // Linear child counts are not derivable from the matrix alone
          // (cells crossed by the line split both ways); seed with a
          // half/half guess, corrected when the children's bundles are
          // analyzed after the next scan.
          left_counts.assign(schema.num_classes(), 0);
          for (ClassId c = 0; c < schema.num_classes(); ++c) {
            left_counts[c] = totals[c] / 2;
          }
        }
        std::vector<int64_t> right_counts(schema.num_classes());
        for (ClassId c = 0; c < schema.num_classes(); ++c) {
          right_counts[c] = totals[c] - left_counts[c];
        }
        if (an.decision == BundleAnalysis::Decision::kCategorical &&
            (CountSum(left_counts) == 0 || CountSum(right_counts) == 0)) {
          MakeLeaf(id);
          return;
        }
        const NodeId left_id = AddChild(left_counts, depth + 1);
        const NodeId right_id = AddChild(right_counts, depth + 1);
        TreeNode& node = result_->tree.mutable_node(id);
        node.is_leaf = false;
        node.split = split;
        node.left = left_id;
        node.right = right_id;
        if (planner_.bivariate()) {
          AttrId lx;
          AttrId rx;
          if (an.decision == BundleAnalysis::Decision::kCategorical) {
            ChildRestriction left_r{an.attr, false, 0, 0,
                                    &node.split.left_subset, 1};
            ChildRestriction right_r{an.attr, false, 0, 0,
                                     &node.split.left_subset, 0};
            lx = planner_.PredictChildX(bundle, an.attr_est, left_r);
            rx = planner_.PredictChildX(bundle, an.attr_est, right_r);
          } else {
            // Linear splits cut the matrix diagonally; no restricted
            // marginal exists, so fall back to parent-level estimates.
            lx = rx = planner_.PredictX(an);
          }
          PushFreshPair(
              left_id, right_id, std::move(bundle),
              planner_.MakeFreshBundle(lx, 0, grids[lx].num_intervals()),
              planner_.MakeFreshBundle(rx, 0, grids[rx].num_intervals()),
              left_counts, right_counts);
        } else {
          PushFreshPair(left_id, right_id, std::move(bundle),
                        HistBundle::MakeUnivariate(schema, grids),
                        HistBundle::MakeUnivariate(schema, grids),
                        left_counts, right_counts);
        }
        return;
      }
    }
  }

  /// Resolves a pending split of tree node `id`, creating children (and
  /// grandchildren for nested pendings) and growing the frontier.
  void ResolvePending(NodeId id, Pending* p, int depth) {
    const Schema& schema = planner_.schema();
    const std::vector<IntervalGrid>& grids = planner_.grids();
    const std::vector<int64_t> totals = result_->tree.node(id).class_counts;
    const int nc = schema.num_classes();
    const int64_t n = CountSum(totals);
    const int num_alive = static_cast<int>(p->alive.size());

    tracker_->ChargeBuffered(static_cast<int64_t>(p->buffer.size()));
    tracker_->ChargeSort(static_cast<int64_t>(p->buffer.size()));
    SortBuffer(&p->buffer);

    // Group buffered records by alive interval (sorted by value => groups
    // are contiguous and ascending).
    std::vector<std::pair<size_t, size_t>> groups(num_alive, {0, 0});
    {
      size_t pos = 0;
      for (int k = 0; k < num_alive; ++k) {
        const size_t begin = pos;
        while (pos < p->buffer.size() &&
               grids[p->attr].IntervalOf(p->buffer[pos].value) ==
                   p->alive[k]) {
          ++pos;
        }
        groups[k] = {begin, pos};
      }
    }

    // Walk: segment 0, alive 0, segment 1, alive 1, ..., last segment.
    // Candidates: every alive-interval edge cut and every distinct
    // buffered value.
    double best_gini = std::numeric_limits<double>::infinity();
    double best_threshold = 0.0;
    int best_s_left = -1;
    size_t best_buf_left = 0;  // buffered records (global index) on the left
    std::vector<int64_t> best_left_counts;

    std::vector<int64_t> below(nc, 0);
    auto candidate = [&](double threshold, int s_left, size_t buf_left) {
      int64_t left_n = 0;
      for (int64_t c : below) left_n += c;
      if (left_n <= 0 || left_n >= n) return;
      const double g = BoundaryGini(below, totals);
      if (g < best_gini) {
        best_gini = g;
        best_threshold = threshold;
        best_s_left = s_left;
        best_buf_left = buf_left;
        best_left_counts = below;
      }
    };

    for (int k = 0; k < num_alive; ++k) {
      for (ClassId c = 0; c < nc; ++c) below[c] += p->segments[k].counts[c];
      // Lower edge of alive interval k (cut index alive[k]-1).
      if (p->alive[k] >= 1) {
        candidate(planner_.CutValue(p->attr, p->alive[k] - 1), k + 1,
                  groups[k].first);
      }
      for (size_t i = groups[k].first; i < groups[k].second; ++i) {
        below[p->buffer[i].label]++;
        const bool last_of_value =
            i + 1 >= groups[k].second ||
            p->buffer[i + 1].value != p->buffer[i].value;
        if (last_of_value) {
          candidate(p->buffer[i].value, k + 1, i + 1);
        }
      }
      // Upper edge (cut index alive[k]); skip when it falls beyond the
      // grid (last interval has no upper cut).
      if (p->alive[k] <
          static_cast<int>(grids[p->attr].boundaries().size())) {
        candidate(planner_.CutValue(p->attr, p->alive[k]), k + 1,
                  groups[k].second);
      }
    }

    if (best_s_left < 0) {
      // Degenerate: every candidate puts all records on one side (e.g.
      // the node's records share a single value inside the alive
      // interval). The committed attribute cannot split this node; fall
      // back to collecting the node's records next scan and finishing it
      // with the exact in-memory builder.
      next_->collect.push_back({id, {}});
      return;
    }

    // ---- Merge segments into the two children and flush the buffer.
    std::vector<int64_t> right_counts(nc);
    for (ClassId c = 0; c < nc; ++c) {
      right_counts[c] = totals[c] - best_left_counts[c];
    }
    const NodeId left_id = AddChild(best_left_counts, depth + 1);
    const NodeId right_id = AddChild(right_counts, depth + 1);
    TreeNode& parent = result_->tree.mutable_node(id);
    parent.is_leaf = false;
    parent.split = Split::Numeric(p->attr, best_threshold);
    parent.left = left_id;
    parent.right = right_id;

    auto merge_side = [&](int seg_begin, int seg_end) -> Segment {
      // Move the first segment out and merge the others into it.
      // Segments on one side share the bundle shape except for bivariate
      // X-range bundles, which only occur in the 1-alive derived case
      // where each side is exactly one segment (no merge needed).
      Segment merged = std::move(p->segments[seg_begin]);
      for (int k = seg_begin + 1; k < seg_end; ++k) {
        Segment& other = p->segments[k];
        for (ClassId c = 0; c < nc; ++c) merged.counts[c] += other.counts[c];
        // Only kGrow fresh full-shape bundles can need merging.
        assert(merged.plan == PlanKind::kGrow &&
               other.plan == PlanKind::kGrow);
        merged.bundle.MergeSameShape(other.bundle);
      }
      return merged;
    };

    Segment left_seg = merge_side(0, best_s_left);
    Segment right_seg = merge_side(best_s_left, num_alive + 1);

    for (size_t i = 0; i < p->buffer.size(); ++i) {
      FlushIntoSegment(i < best_buf_left ? &left_seg : &right_seg, store_,
                       grids, codes_, p->buffer[i].rid);
    }
    p->buffer.clear();

    // ---- Materialize each side.
    auto finish_side = [&](NodeId child_id, Segment& seg) {
      switch (seg.plan) {
        case PlanKind::kGrow:
          GrowNode(child_id, std::move(seg.bundle), seg.bundle_fresh);
          break;
        case PlanKind::kPending:
          ResolvePending(child_id, seg.sub.get(), depth + 1);
          break;
        case PlanKind::kExact: {
          const int64_t ln = CountSum(seg.exact_left_counts);
          const int64_t rn = CountSum(seg.exact_right_counts);
          if (ln == 0 || rn == 0) {
            // The planned split turned out degenerate on the real
            // records; fall back to growing whichever side has
            // everything.
            GrowNode(child_id, ln == 0 ? std::move(seg.exact_right)
                                       : std::move(seg.exact_left));
            break;
          }
          const NodeId gl = AddChild(seg.exact_left_counts, depth + 2);
          const NodeId gr = AddChild(seg.exact_right_counts, depth + 2);
          TreeNode& child = result_->tree.mutable_node(child_id);
          child.is_leaf = false;
          child.split = seg.exact_split;
          child.left = gl;
          child.right = gr;
          GrowNode(gl, std::move(seg.exact_left));
          GrowNode(gr, std::move(seg.exact_right));
          break;
        }
      }
    };
    finish_side(left_id, left_seg);
    finish_side(right_id, right_seg);
  }

  /// Finishes every collected partition in memory. With several
  /// independent partitions and a real pool, each subtree is built into a
  /// private detached tree (root node copied from the master tree) and
  /// grafted back in work-list order; Graft appends the subtree's nodes
  /// in their local id order, which is exactly the order the serial
  /// in-place build would have appended them, so node ids — and the
  /// serialized tree — match the serial build byte for byte.
  void FinishCollects(std::vector<CollectWork>& collect) {
    const Schema& schema = planner_.schema();
    if (pool_->parallelism() > 1 && collect.size() > 1) {
      struct CollectBuild {
        DecisionTree tree;
        BuildStats stats;
      };
      std::vector<CollectBuild> builds(collect.size());
      pool_->ParallelFor(collect.size(), 1, [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) {
          CollectBuild& b = builds[i];
          b.tree = DecisionTree(schema);
          TreeNode root = result_->tree.node(collect[i].node);
          b.tree.AddNode(std::move(root));
          ScanTracker local(&b.stats);
          local.set_real_io(tracker_->real_io());
          FinishCollect(collect[i].rids, &b.tree, 0, &local);
        }
      });
      for (size_t i = 0; i < collect.size(); ++i) {
        tracker_->ChargeBuffered(static_cast<int64_t>(collect[i].rids.size()));
        result_->stats.Accumulate(builds[i].stats);
        result_->tree.Graft(collect[i].node, builds[i].tree);
      }
    } else {
      for (CollectWork& w : collect) {
        tracker_->ChargeBuffered(static_cast<int64_t>(w.rids.size()));
        FinishCollect(w.rids, &result_->tree, w.node, tracker_);
      }
    }
    collect.clear();
  }

 private:
  /// Pushes the two fresh children of a just-split node onto the next
  /// round's work list. When sibling subtraction is on and the parent's
  /// bundle has the children's exact shape (univariate: always;
  /// bivariate: only when both children keep the parent's X axis and
  /// full X range), the LARGER child (by seeded counts) is not scanned
  /// at all: it is queued holding the parent's histograms and derived
  /// after the scan as parent minus its scanned sibling — exact, because
  /// the split partitions the parent's records into exactly these two
  /// children. Ties scan the left child and derive the right. A cost
  /// gate skips the derivation for small nodes, where subtracting every
  /// histogram cell would cost more than the scan it avoids. The
  /// (left, right) push order is preserved either way, so node-creation
  /// order — and the serialized tree — is unchanged.
  void PushFreshPair(NodeId left_id, NodeId right_id, HistBundle&& parent,
                     HistBundle&& left_b, HistBundle&& right_b,
                     const std::vector<int64_t>& left_counts,
                     const std::vector<int64_t>& right_counts) {
    const int base = static_cast<int>(next_->fresh.size());
    // Deriving trades the larger child's accumulation (~num_attrs adds
    // per record) for one subtract per histogram cell, so it only pays
    // off when the child is big relative to the bundle — bivariate
    // matrices hold q*q cells per attribute, and deep nodes with few
    // records would spend more on the subtract than the skipped scan.
    // Both sides of the comparison are deterministic (seeded class
    // counts, shape-derived cell count), so the choice — and the tree —
    // is identical on every run.
    const int64_t larger =
        std::max(CountSum(left_counts), CountSum(right_counts));
    const int64_t cells =
        static_cast<int64_t>(parent.MemoryBytes()) /
        static_cast<int64_t>(sizeof(int64_t));
    if (options_.sibling_subtraction && parent.SameShapeAs(left_b) &&
        parent.SameShapeAs(right_b) &&
        larger * planner_.schema().num_attrs() > cells) {
      if (CountSum(left_counts) > CountSum(right_counts)) {
        next_->fresh.push_back({left_id, std::move(parent), base + 1});
        next_->fresh.push_back({right_id, std::move(right_b), -1});
      } else {
        next_->fresh.push_back({left_id, std::move(left_b), -1});
        next_->fresh.push_back({right_id, std::move(parent), base});
      }
      return;
    }
    next_->fresh.push_back({left_id, std::move(left_b), -1});
    next_->fresh.push_back({right_id, std::move(right_b), -1});
  }

  NodeId AddChild(const std::vector<int64_t>& counts, int depth) {
    TreeNode child;
    child.depth = depth;
    child.class_counts = counts;
    child.leaf_class = Majority(counts);
    child.is_leaf = false;  // provisional; leaves are marked explicitly
    return result_->tree.AddNode(std::move(child));
  }

  void MakeLeaf(NodeId id) { result_->tree.MakeLeaf(id); }

  // Finishes one collect partition with the exact in-memory builder:
  // directly on the dataset when there is one, otherwise on a Dataset
  // materialized from the stash (rids ascending, so local record i is
  // global record rids[i] — BuildExactSubtree depends only on the
  // record sequence, so the subtree is identical either way).
  void FinishCollect(const std::vector<RecordId>& rids, DecisionTree* tree,
                     NodeId node, ScanTracker* tracker) {
    if constexpr (!Store::kStreaming) {
      BuildExactSubtree(*store_.dataset(), rids, options_.base, tree, node,
                        tracker, pool_);
    } else {
      // Streamed: the records live in the stash. Materialize them in
      // ascending rid order, so local record i is global record rids[i];
      // BuildExactSubtree depends only on attribute values and the
      // relative record order, both of which this preserves, so the
      // subtree matches the in-memory build's exactly.
      const Dataset local = store_.Materialize(rids);
      std::vector<RecordId> lrids(static_cast<size_t>(local.num_records()));
      std::iota(lrids.begin(), lrids.end(), 0);
      BuildExactSubtree(local, lrids, options_.base, tree, node, tracker,
                        pool_);
    }
  }

  const SplitPlanner& planner_;
  const Store& store_;
  const CmpOptions& options_;
  BuildResult* result_;
  ScanTracker* tracker_;
  ThreadPool* pool_;  // borrowed, never null
  FrontierQueues* next_;
  const BinCodeCache* codes_;  // null when the cache is disabled
  const std::vector<PairRelation>* root_relations_ = nullptr;
};

}  // namespace cmp

#endif  // CMP_CMP_SPLIT_PLAN_H_
