#ifndef CMP_CMP_BUILD_DRIVER_H_
#define CMP_CMP_BUILD_DRIVER_H_

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "cmp/frontier.h"
#include "cmp/options.h"
#include "cmp/pairs.h"
#include "cmp/record_store.h"
#include "cmp/scan_pass.h"
#include "cmp/split_plan.h"
#include "cmp/variant_policy.h"
#include "common/class_counts.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "hist/grid_builder.h"
#include "hist/grids.h"
#include "io/scan.h"
#include "pruning/mdl.h"
#include "tree/builder.h"
#include "tree/observer.h"

namespace cmp {

// ---------------------------------------------------------------------
// The build driver. The heavy lifting lives in the pipeline layers:
//   frontier.h    — pending/segment lifecycle, routing, mirrors
//   scan_pass.h   — one sharded, blocked pass over the records
//   split_plan.h  — bundle analysis, split decisions, tree growth
// The driver owns the shared state (grids, record->node map, frontier
// queues), sequences the passes, and reports per-pass observations.
//
// Templated over the record store (record_store.h): the in-memory path
// instantiates it with InMemoryStore + a zero-copy DatasetBlockSource,
// the out-of-core path with StreamStore + a TableBlockSource.
//
// The scan itself runs behind the PassScanner seam (scan_pass.h): by
// default the driver's own local ScanPass, or — when a `remote` scanner
// is injected — the distributed coordinator (src/dist/), which ships the
// frontier skeleton to worker processes and merges their histograms back
// in rank order. Everything above the seam (grids, planning, resolve,
// tree growth) is the same code either way, which is what makes the
// distributed tree byte-identical to the single-process one.

template <class Store>
class CmpBuild {
 public:
  CmpBuild(Store& store, BlockSource& source, const CmpOptions& options,
           ThreadPool* pool, BuildResult* result,
           PassScanner* remote = nullptr)
      : store_(store),
        source_(source),
        schema_(store.schema()),
        options_(options),
        policy_(VariantPolicy::For(options.variant)),
        pool_(pool),
        result_(result),
        tracker_(&result->stats),
        remote_(remote) {}

  void Run();

 private:
  void BuildGrids(int64_t n);
  void BuildCodes();

  Store& store_;
  BlockSource& source_;
  const Schema& schema_;
  CmpOptions options_;
  VariantPolicy policy_;
  ThreadPool* pool_;  // borrowed, never null (CmpBuilder::Build guarantees)
  BuildResult* result_;
  ScanTracker tracker_;
  PassScanner* remote_;  // borrowed; null = scan locally

  std::vector<IntervalGrid> grids_;
  // interior_[a][i] is nonzero iff grid interval i of numeric attribute a
  // contains at least two distinct values in the training set — i.e. an
  // *interior* split point can exist there. Tie buckets (e.g. the spike
  // of commission == 0 in the Agrawal data) collapse to a single value,
  // so the gradient estimate must be clamped to the interval's edge
  // ginis and the interval must never be selected as alive.
  std::vector<std::vector<char>> interior_;
  std::vector<AttrId> numeric_attrs_;
  std::vector<NodeId> nid_;

  // Pass-invariant bin-code cache (hist/bin_codes.h): every attribute's
  // interval index / categorical value, encoded once right after grid
  // construction, read by every scan pass after it. Disabled (and empty)
  // when the option is off, when the build finishes entirely in memory
  // before the first histogram scan, or when an attribute needs more
  // than 16 bits per code.
  BinCodeCache codes_;

  // Optional all-pairs extension: the best root-level pairwise linear
  // relation discovered during the initial pass (empty if disabled or
  // none found).
  std::vector<PairRelation> root_relations_;

  // This round's work and the work split resolution generates for the
  // next scan.
  FrontierQueues work_;
  FrontierQueues next_;
};

// Discretization pass: one column read and ONE sort per numeric
// attribute serve both the quantile grid and the interior-splittable
// marks, behind the AttrGridBuilder seam (hist/grid_builder.h). The
// batch driver always uses the exact full-sort builder: grids depend
// only on the sorted value multiset, so the streamed and in-memory
// builds produce identical grids — the first link of the
// streamed-equals-in-memory determinism argument. (The sketch builder
// behind the same seam powers the cmp-stream trainer, which has its
// own driver in src/stream/.)
template <class Store>
void CmpBuild<Store>::BuildGrids(int64_t n) {
  tracker_.ChargeScan(n, schema_);
  grids_.assign(schema_.num_attrs(), IntervalGrid());
  interior_.assign(schema_.num_attrs(), {});
  auto build_attr = [&](AttrId a) {
    std::vector<double> column;
    if (!source_.ReadNumericColumn(a, &column)) {
      throw std::runtime_error("cmp: failed to read numeric column");
    }
    ExactAttrGridBuilder builder;
    if (codes_.enabled()) {
      // When the bin-code cache is on, the same column read feeds both
      // the grid build (sorted copy) and the code encoding (record
      // order) — no extra pass over the data.
      builder.Add(column.data(), static_cast<int64_t>(column.size()));
    } else {
      builder.AddOwned(std::move(column));
    }
    AttrGridResult built =
        builder.Finish(options_.intervals, options_.discretization);
    grids_[a] = std::move(built.grid);
    interior_[a] = std::move(built.interior);
    if (codes_.enabled()) {
      codes_.EncodeNumericColumn(a, grids_[a], column);
    }
  };
  if (pool_->parallelism() > 1 && numeric_attrs_.size() > 1) {
    pool_->ParallelFor(static_cast<int64_t>(numeric_attrs_.size()), 1,
                       [&](int64_t lo, int64_t hi) {
                         for (int64_t i = lo; i < hi; ++i) {
                           build_attr(numeric_attrs_[i]);
                         }
                       });
  } else {
    for (AttrId a : numeric_attrs_) build_attr(a);
  }
  if (options_.discretization == Discretization::kEqualDepth) {
    for (size_t i = 0; i < numeric_attrs_.size(); ++i) {
      tracker_.ChargeSort(n);
    }
  }
}

// Completes the bin-code cache after the grids exist: the label column
// and the categorical columns (numeric columns were encoded inside
// BuildGrids, riding the discretization pass's column reads). For the
// out-of-core build this is the compact resident sidecar of the streamed
// table — 1-2 bytes per value instead of 8 — so it is charged against
// the peak-memory high-water mark.
template <class Store>
void CmpBuild<Store>::BuildCodes() {
  if (!codes_.enabled()) return;
  {
    std::vector<ClassId> labels;
    if (!source_.ReadLabels(&labels)) {
      throw std::runtime_error("cmp: failed to read label column");
    }
    codes_.SetLabels(std::move(labels));
  }
  const std::vector<AttrId> cat_attrs = schema_.CategoricalAttrs();
  auto encode_attr = [&](AttrId a) {
    std::vector<int32_t> column;
    if (!source_.ReadCategoricalColumn(a, &column)) {
      throw std::runtime_error("cmp: failed to read categorical column");
    }
    codes_.EncodeCategoricalColumn(a, column);
  };
  if (pool_->parallelism() > 1 && cat_attrs.size() > 1) {
    pool_->ParallelFor(static_cast<int64_t>(cat_attrs.size()), 1,
                       [&](int64_t lo, int64_t hi) {
                         for (int64_t i = lo; i < hi; ++i) {
                           encode_attr(cat_attrs[i]);
                         }
                       });
  } else {
    for (AttrId a : cat_attrs) encode_attr(a);
  }
  tracker_.NotePeakMemory(codes_.MemoryBytes());
}

template <class Store>
void CmpBuild<Store>::Run() {
  Timer timer;
  const int64_t n = source_.num_records();
  result_->tree = DecisionTree(schema_);
  TrainObserver* const observer = options_.base.observer;

  // Streamed builds report the bytes the scanner actually pulled from
  // the file instead of the disk-simulation charges.
  if (Store::kStreaming) tracker_.set_real_io(true);
  int64_t real_bytes_charged = 0;
  auto charge_real_bytes = [&] {
    if (!Store::kStreaming) return;
    const int64_t total = source_.bytes_read();
    tracker_.ChargeRealBytes(total - real_bytes_charged);
    real_bytes_charged = total;
  };

  if (observer != nullptr) {
    observer->OnBuildStart(policy_.display_name, n);
  }

  TreeNode root;
  root.depth = 0;
  if (const Dataset* full = store_.dataset()) {
    root.class_counts = full->ClassCounts();
  } else {
    std::vector<ClassId> labels;
    if (!source_.ReadLabels(&labels)) {
      throw std::runtime_error("cmp: failed to read label column");
    }
    root.class_counts.assign(schema_.num_classes(), 0);
    for (ClassId c : labels) {
      // The in-memory loader validates labels on load; the streamed path
      // sees raw column bytes, so a corrupt table must fail here rather
      // than index out of bounds.
      if (c < 0 || c >= schema_.num_classes()) {
        throw std::runtime_error("cmp: label out of range (corrupt table?)");
      }
      root.class_counts[c]++;
    }
  }
  root.leaf_class = Majority(root.class_counts);
  const NodeId root_id = result_->tree.AddNode(std::move(root));
  if (n == 0) {
    result_->tree.MakeLeaf(root_id);
    result_->stats.wall_seconds = timer.Seconds();
    if (observer != nullptr) observer->OnBuildEnd(result_->stats);
    return;
  }

  numeric_attrs_ = schema_.NumericAttrs();
  // A build that finishes entirely in memory (root collected before any
  // histogram scan) never reads a bin code; skip the cache outright.
  const bool collect_only = options_.base.in_memory_threshold > 0 &&
                            n <= options_.base.in_memory_threshold;
  if (options_.bin_code_cache && !collect_only) {
    codes_ = BinCodeCache(schema_, n, options_.intervals);
  }
  BuildGrids(n);
  BuildCodes();
  charge_real_bytes();

  if (options_.all_pairs_root && policy_.search_linear) {
    // All-pairs discovery needs simultaneous random access to every
    // numeric column; it is an in-memory-only extension (off by
    // default) and is skipped for streamed builds.
    if (const Dataset* full = store_.dataset()) {
      PairDiscoveryOptions pd;
      pd.min_gain = options_.linear_gain;
      root_relations_ = DiscoverLinearRelations(*full, pd, &tracker_);
    }
  }

  // With a remote scanner the record->node map lives in the workers
  // (each over its own slice); the coordinator never routes a record.
  if (remote_ == nullptr) nid_.assign(n, root_id);

  // The three pipeline layers, wired over the shared state above.
  const SplitPlanner planner(schema_, options_, policy_, grids_, interior_,
                             numeric_attrs_, pool_);
  SplitExecutor<Store> executor(planner, store_, options_, result_,
                                &tracker_, pool_, &next_, &codes_);
  executor.set_root_relations(&root_relations_);
  ScanPass<Store> scan(store_, source_, grids_, result_->tree, nid_, pool_,
                       &tracker_, &codes_, options_.scan_shards);
  PassScanner* const scanner =
      remote_ != nullptr ? remote_ : static_cast<PassScanner*>(&scan);
  {
    PassScanContext ctx;
    ctx.grids = &grids_;
    ctx.tree = &result_->tree;
    ctx.num_records = n;
    ctx.tracker = &tracker_;
    scanner->Prepare(ctx);
  }

  if (options_.base.in_memory_threshold > 0 &&
      n <= options_.base.in_memory_threshold) {
    work_.collect.push_back({root_id, {}});
  } else if (planner.bivariate()) {
    const AttrId x = numeric_attrs_.front();
    work_.fresh.push_back(
        {root_id, HistBundle::MakeBivariate(schema_, grids_, x, 0,
                                            grids_[x].num_intervals())});
  } else {
    work_.fresh.push_back(
        {root_id, HistBundle::MakeUnivariate(schema_, grids_)});
  }

  int pass_index = 0;
  while (!work_.Empty()) {
    PassObservation po;
    po.pass = pass_index++;
    po.records_scanned = n;
    po.frontier_fresh = static_cast<int64_t>(work_.fresh.size());
    po.frontier_pending = static_cast<int64_t>(work_.pending.size());
    po.frontier_collect = static_cast<int64_t>(work_.collect.size());
    const int64_t bytes_before = result_->stats.bytes_read;

    Timer scan_timer;
    scanner->RunPass(work_, &po);
    charge_real_bytes();
    po.scan_seconds = scan_timer.Seconds();

    if (observer != nullptr) {
      for (const PendingWork& w : work_.pending) {
        po.alive_intervals += CountAliveIntervals(*w.pending);
        po.buffered_records += CountBufferedRecords(*w.pending);
        po.buffer_bytes += w.pending->MemoryBytes();
      }
      if constexpr (Store::kStreaming) {
        po.buffer_bytes += store_.stash_bytes();
      }
    }

    // Finish small partitions in memory (grafted back in work-list
    // order; see SplitExecutor::FinishCollects for the determinism
    // argument).
    Timer finish_timer;
    executor.FinishCollects(work_.collect);
    po.finish_seconds = finish_timer.Seconds();

    next_.Clear();
    Timer plan_timer;

    // Frontier phase A: every fresh node's analysis is a pure function
    // of its (now complete) bundle, so the frontier analyzes in
    // parallel. Phase B below applies the results serially in work-list
    // order — node creation order, stats, and tie-breaking are exactly
    // the serial build's.
    std::vector<std::unique_ptr<BundleAnalysis>> pre(work_.fresh.size());
    if (pool_->parallelism() > 1 && work_.fresh.size() > 1) {
      pool_->ParallelFor(work_.fresh.size(), 1, [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) {
          const std::vector<int64_t> totals =
              work_.fresh[i].bundle.ClassTotals();
          if (executor.WouldAnalyze(work_.fresh[i].node, totals)) {
            pre[i] = std::make_unique<BundleAnalysis>(
                planner.Analyze(work_.fresh[i].bundle, totals));
          }
        }
      });
    }
    // Pending buffers sort to a unique (value, rid) order, so the sorts
    // — the bulk of resolution cost — fan out ahead of the serial
    // resolve walk, which then re-sorts already-sorted buffers for free.
    if (pool_->parallelism() > 1 && !work_.pending.empty()) {
      std::vector<Pending*> all_pendings;
      for (PendingWork& w : work_.pending) {
        CollectPendings(w.pending.get(), &all_pendings);
      }
      pool_->ParallelFor(all_pendings.size(), 1,
                         [&](int64_t lo, int64_t hi) {
                           for (int64_t i = lo; i < hi; ++i) {
                             SortBuffer(&all_pendings[i]->buffer);
                           }
                         });
    }

    for (size_t i = 0; i < work_.fresh.size(); ++i) {
      executor.GrowNode(work_.fresh[i].node, std::move(work_.fresh[i].bundle),
                        /*predicted=*/true, pre[i].get());
    }
    for (PendingWork& w : work_.pending) {
      const int depth = result_->tree.node(w.node).depth;
      executor.ResolvePending(w.node, w.pending.get(), depth);
    }
    po.plan_seconds = plan_timer.Seconds();

    if constexpr (Store::kStreaming) {
      // Every retained record has been consumed (collect subtrees built,
      // pending splits resolved); the stash restarts empty next round.
      store_.ClearStash();
    }

    work_ = std::move(next_);
    next_.Clear();

    po.bytes_read = result_->stats.bytes_read - bytes_before;
    po.tree_nodes = result_->tree.num_nodes();
    if (observer != nullptr) observer->OnPass(po);
  }

  if (options_.base.prune) PruneTreeMdl(&result_->tree);
  result_->stats.tree_nodes = result_->tree.num_nodes();
  result_->stats.tree_depth = result_->tree.Depth();
  result_->stats.wall_seconds = timer.Seconds();
  if (observer != nullptr) observer->OnBuildEnd(result_->stats);
}

}  // namespace cmp

#endif  // CMP_CMP_BUILD_DRIVER_H_
