#include "cmp/scan_pass.h"

namespace cmp {

SlotMaps BuildSlotMaps(int num_nodes, const FrontierQueues& work) {
  SlotMaps slots;
  slots.fresh.assign(num_nodes, -1);
  slots.pending.assign(num_nodes, -1);
  slots.collect.assign(num_nodes, -1);
  for (size_t i = 0; i < work.fresh.size(); ++i) {
    // Sibling-derived entries are not scanned into: their records just
    // advance nid_ and their bundle is computed by subtraction after the
    // pass (see ScanPass::Run).
    if (work.fresh[i].derive_from_sibling >= 0) continue;
    slots.fresh[work.fresh[i].node] = static_cast<int>(i);
  }
  for (size_t i = 0; i < work.pending.size(); ++i) {
    slots.pending[work.pending[i].node] = static_cast<int>(i);
  }
  for (size_t i = 0; i < work.collect.size(); ++i) {
    slots.collect[work.collect[i].node] = static_cast<int>(i);
  }
  return slots;
}

}  // namespace cmp
