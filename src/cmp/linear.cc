#include "cmp/linear.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "gini/gini.h"

namespace cmp {

namespace {

// One axis of the (possibly coarsened) cell grid in value space:
// `edges[k]..edges[k+1]` bounds cell k.
struct Axis {
  std::vector<double> edges;  // size = cells + 1
  int cells() const { return static_cast<int>(edges.size()) - 1; }
};

// Builds the value-space edges of matrix columns/rows covering global
// intervals [lo, lo + n) of `grid`, merged into at most `max_cells`
// coarse cells. Returns the axis plus, per coarse cell, the [first, last]
// fine-cell range via `fine_begin`.
Axis CoarsenAxis(const IntervalGrid& grid, int lo, int n, int max_cells,
                 std::vector<int>* fine_begin) {
  // Fine edges: value bounds of each of the n fine cells.
  std::vector<double> fine_edges(n + 1);
  for (int k = 0; k <= n; ++k) {
    const int g = lo + k;  // global edge index: cut below interval g
    if (g == 0) {
      fine_edges[k] = grid.min_value();
    } else if (g - 1 < static_cast<int>(grid.boundaries().size())) {
      fine_edges[k] = grid.UpperCut(g - 1);
    } else {
      fine_edges[k] = grid.max_value();
    }
  }
  Axis axis;
  fine_begin->clear();
  const int groups = std::min(n, max_cells);
  axis.edges.reserve(groups + 1);
  for (int g = 0; g < groups; ++g) {
    const int begin = static_cast<int>(
        static_cast<int64_t>(n) * g / groups);
    fine_begin->push_back(begin);
    axis.edges.push_back(fine_edges[begin]);
  }
  axis.edges.push_back(fine_edges[n]);
  return axis;
}

// Class counts of the coarsened matrix, laid out [x][y][class].
std::vector<int64_t> CoarsenMatrix(const HistogramMatrix& m,
                                   const std::vector<int>& xb,
                                   const std::vector<int>& yb) {
  const int cx = static_cast<int>(xb.size());
  const int cy = static_cast<int>(yb.size());
  const int nc = m.num_classes();
  std::vector<int64_t> out(static_cast<size_t>(cx) * cy * nc, 0);
  auto group_of = [](const std::vector<int>& begins, int fine) {
    // begins is ascending; find the last begin <= fine.
    const auto it =
        std::upper_bound(begins.begin(), begins.end(), fine) - 1;
    return static_cast<int>(it - begins.begin());
  };
  for (int x = 0; x < m.x_intervals(); ++x) {
    const int gx = group_of(xb, x);
    for (int y = 0; y < m.y_intervals(); ++y) {
      const int gy = group_of(yb, y);
      const int64_t* cell = m.cell(x, y);
      int64_t* dst = out.data() + (static_cast<size_t>(gx) * cy + gy) * nc;
      for (int c = 0; c < nc; ++c) dst[c] += cell[c];
    }
  }
  return out;
}

struct WalkResult {
  bool valid = false;
  double a = 0.0;
  double b = 0.0;
  double c = 0.0;
  double gini = 1.0;
};

// gini^D of the three-way partition induced by a*X + b*Y <= c with
// a, b > 0 over the coarse grid.
double LineGini(const std::vector<int64_t>& grid, const Axis& ax,
                const Axis& ay, int nc, double a, double b, double c,
                int64_t* n_under, int64_t* n_above) {
  std::vector<int64_t> under(nc, 0);
  std::vector<int64_t> above(nc, 0);
  std::vector<int64_t> on(nc, 0);
  const int cy = ay.cells();
  for (int x = 0; x < ax.cells(); ++x) {
    for (int y = 0; y < cy; ++y) {
      const int64_t* cell = grid.data() + (static_cast<size_t>(x) * cy + y) * nc;
      // With positive coefficients, the max corner decides "under" and
      // the min corner decides "above".
      const double f_max = a * ax.edges[x + 1] + b * ay.edges[y + 1] - c;
      const double f_min = a * ax.edges[x] + b * ay.edges[y] - c;
      std::vector<int64_t>* bucket;
      if (f_max <= 0.0) {
        bucket = &under;
      } else if (f_min >= 0.0) {
        bucket = &above;
      } else {
        bucket = &on;
      }
      for (int k = 0; k < nc; ++k) (*bucket)[k] += cell[k];
    }
  }
  *n_under = 0;
  *n_above = 0;
  for (int k = 0; k < nc; ++k) {
    *n_under += under[k];
    *n_above += above[k];
  }
  return SplitGini3(under, above, on);
}

// The paper's giniNegativeSlope walk: the line enters the grid at
// x-edge i on the bottom and y-edge j on the left; i and j advance
// greedily toward the top-right corner.
WalkResult NegativeSlopeWalk(const std::vector<int64_t>& grid, const Axis& ax,
                             const Axis& ay, int nc) {
  WalkResult best;
  const int max_i = ax.cells();
  const int max_j = ay.cells();
  if (max_i < 2 || max_j < 2) return best;
  const double x0 = ax.edges.front();
  const double y0 = ay.edges.front();

  auto line_for = [&](int i, int j, double* a, double* b, double* c) {
    // Line through (ax.edges[i], y0) and (x0, ay.edges[j]).
    const double dx = ax.edges[i] - x0;
    const double dy = ay.edges[j] - y0;
    *a = 1.0 / dx;
    *b = 1.0 / dy;
    *c = 1.0 + x0 / dx + y0 / dy;
  };

  auto eval = [&](int i, int j, WalkResult* out) {
    double a;
    double b;
    double c;
    line_for(i, j, &a, &b, &c);
    int64_t n_under = 0;
    int64_t n_above = 0;
    const double g = LineGini(grid, ax, ay, nc, a, b, c, &n_under, &n_above);
    out->a = a;
    out->b = b;
    out->c = c;
    out->gini = g;
    out->valid = n_under > 0 && n_above > 0;
    return g;
  };

  int i = 1;
  int j = 1;
  WalkResult cur;
  eval(i, j, &cur);
  if (cur.valid && cur.gini < best.gini) best = cur;
  while (i < max_i || j < max_j) {
    WalkResult cand_x;
    WalkResult cand_y;
    double gx = std::numeric_limits<double>::infinity();
    double gy = std::numeric_limits<double>::infinity();
    if (i < max_i) gx = eval(i + 1, j, &cand_x);
    if (j < max_j) gy = eval(i, j + 1, &cand_y);
    if (gx <= gy) {
      ++i;
      cur = cand_x;
    } else {
      ++j;
      cur = cand_y;
    }
    if (cur.valid && (!best.valid || cur.gini < best.gini)) best = cur;
  }
  return best;
}

// Mirrors the grid along Y (y -> -y) so the negative-slope walk searches
// positive-slope lines; coefficients are mapped back by negating b.
WalkResult PositiveSlopeWalk(const std::vector<int64_t>& grid, const Axis& ax,
                             const Axis& ay, int nc) {
  const int cy = ay.cells();
  Axis may;  // mirrored y axis
  may.edges.resize(ay.edges.size());
  for (size_t k = 0; k < ay.edges.size(); ++k) {
    may.edges[k] = -ay.edges[ay.edges.size() - 1 - k];
  }
  std::vector<int64_t> mgrid(grid.size());
  const int cx = ax.cells();
  for (int x = 0; x < cx; ++x) {
    for (int y = 0; y < cy; ++y) {
      const size_t src = (static_cast<size_t>(x) * cy + y) * nc;
      const size_t dst = (static_cast<size_t>(x) * cy + (cy - 1 - y)) * nc;
      for (int c = 0; c < nc; ++c) mgrid[dst + c] = grid[src + c];
    }
  }
  WalkResult r = NegativeSlopeWalk(mgrid, ax, may, nc);
  r.b = -r.b;
  return r;
}

}  // namespace

LinearSplitResult FindBestLine(const HistogramMatrix& m,
                               const IntervalGrid& gx, int x_lo,
                               const IntervalGrid& gy, int max_grid) {
  LinearSplitResult out;
  const int nc = m.num_classes();
  if (m.x_intervals() < 2 || m.y_intervals() < 2) return out;

  std::vector<int> xb;
  std::vector<int> yb;
  const Axis ax = CoarsenAxis(gx, x_lo, m.x_intervals(), max_grid, &xb);
  const Axis ay = CoarsenAxis(gy, 0, m.y_intervals(), max_grid, &yb);
  const std::vector<int64_t> grid = CoarsenMatrix(m, xb, yb);

  const WalkResult neg = NegativeSlopeWalk(grid, ax, ay, nc);
  const WalkResult pos = PositiveSlopeWalk(grid, ax, ay, nc);
  const WalkResult& best =
      (!pos.valid || (neg.valid && neg.gini <= pos.gini)) ? neg : pos;
  if (!best.valid) return out;
  out.valid = true;
  out.a = best.a;
  out.b = best.b;
  out.c = best.c;
  out.gini = best.gini;
  return out;
}

}  // namespace cmp
