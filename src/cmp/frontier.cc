#include "cmp/frontier.h"

#include <algorithm>

namespace cmp {

namespace {

int64_t SegmentMemory(const Segment& seg) {
  int64_t bytes = seg.bundle.MemoryBytes() + seg.exact_left.MemoryBytes() +
                  seg.exact_right.MemoryBytes();
  if (seg.sub != nullptr) bytes += seg.sub->MemoryBytes();
  return bytes;
}

}  // namespace

int64_t Pending::MemoryBytes() const {
  int64_t bytes = static_cast<int64_t>(buffer.size()) * kBufferedBytes;
  for (const Segment& seg : segments) bytes += SegmentMemory(seg);
  return bytes;
}

std::unique_ptr<Pending> ClonePendingEmpty(const Pending& p, int nc) {
  auto clone = std::make_unique<Pending>();
  clone->attr = p.attr;
  clone->alive = p.alive;
  clone->segments.resize(p.segments.size());
  for (size_t i = 0; i < p.segments.size(); ++i) {
    const Segment& src = p.segments[i];
    Segment& dst = clone->segments[i];
    dst.counts.assign(nc, 0);
    dst.range_lo = src.range_lo;
    dst.range_hi = src.range_hi;
    dst.plan = src.plan;
    dst.bundle_fresh = src.bundle_fresh;
    switch (src.plan) {
      case PlanKind::kGrow:
        if (src.bundle_fresh) dst.bundle = src.bundle.CloneEmptyShape();
        break;
      case PlanKind::kPending:
        dst.sub = ClonePendingEmpty(*src.sub, nc);
        break;
      case PlanKind::kExact:
        dst.exact_split = src.exact_split;
        dst.exact_left = src.exact_left.CloneEmptyShape();
        dst.exact_right = src.exact_right.CloneEmptyShape();
        dst.exact_left_counts.assign(nc, 0);
        dst.exact_right_counts.assign(nc, 0);
        break;
    }
  }
  return clone;
}

void MergePendingInto(Pending* dst, const Pending& src) {
  dst->buffer.insert(dst->buffer.end(), src.buffer.begin(),
                     src.buffer.end());
  for (size_t i = 0; i < dst->segments.size(); ++i) {
    Segment& d = dst->segments[i];
    const Segment& s = src.segments[i];
    for (size_t c = 0; c < d.counts.size(); ++c) d.counts[c] += s.counts[c];
    switch (d.plan) {
      case PlanKind::kGrow:
        if (d.bundle_fresh) d.bundle.MergeSameShape(s.bundle);
        break;
      case PlanKind::kPending:
        MergePendingInto(d.sub.get(), *s.sub);
        break;
      case PlanKind::kExact:
        for (size_t c = 0; c < d.exact_left_counts.size(); ++c) {
          d.exact_left_counts[c] += s.exact_left_counts[c];
          d.exact_right_counts[c] += s.exact_right_counts[c];
        }
        d.exact_left.MergeSameShape(s.exact_left);
        d.exact_right.MergeSameShape(s.exact_right);
        break;
    }
  }
}

void SortBuffer(std::vector<BufferedRecord>* buffer) {
  std::sort(buffer->begin(), buffer->end(),
            [](const BufferedRecord& a, const BufferedRecord& b) {
              return a.value != b.value ? a.value < b.value : a.rid < b.rid;
            });
}

void CollectPendings(Pending* p, std::vector<Pending*>* out) {
  out->push_back(p);
  for (Segment& seg : p->segments) {
    if (seg.plan == PlanKind::kPending) CollectPendings(seg.sub.get(), out);
  }
}

int64_t CountAliveIntervals(const Pending& p) {
  int64_t n = static_cast<int64_t>(p.alive.size());
  for (const Segment& seg : p.segments) {
    if (seg.plan == PlanKind::kPending) n += CountAliveIntervals(*seg.sub);
  }
  return n;
}

int64_t CountBufferedRecords(const Pending& p) {
  int64_t n = static_cast<int64_t>(p.buffer.size());
  for (const Segment& seg : p.segments) {
    if (seg.plan == PlanKind::kPending) n += CountBufferedRecords(*seg.sub);
  }
  return n;
}

}  // namespace cmp
