#ifndef CMP_CMP_BUNDLE_H_
#define CMP_CMP_BUNDLE_H_

#include <cassert>
#include <vector>

#include "common/dataset.h"
#include "hist/bin_codes.h"
#include "hist/grids.h"
#include "hist/hist_kernels.h"
#include "hist/histogram1d.h"
#include "hist/histogram2d.h"

namespace cmp {

/// The class-histogram state one CMP node accumulates during a scan.
///
/// CMP-S keeps one 1-D histogram per attribute (interval rows for numeric
/// attributes, value rows for categorical ones).
///
/// CMP-B/CMP keep one bivariate HistogramMatrix per attribute other than
/// the designated X-axis attribute `x_attr` (all matrices of a node share
/// the same X axis, chosen by predictSplit). The X rows of a bundle may
/// cover only a sub-range [x_lo, x_hi) of the global grid: bundles of
/// children created by an X split are sub-matrices of the parent's
/// matrices, which is what lets CMP-B grow several levels per scan.
class HistBundle {
 public:
  HistBundle() = default;

  /// Creates an empty univariate (CMP-S) bundle over the global grids.
  static HistBundle MakeUnivariate(const Schema& schema,
                                   const std::vector<IntervalGrid>& grids);

  /// Creates an empty bivariate bundle with the given X-axis attribute
  /// (must be numeric) covering X-intervals [x_lo, x_hi) of the global
  /// grid.
  static HistBundle MakeBivariate(const Schema& schema,
                                  const std::vector<IntervalGrid>& grids,
                                  AttrId x_attr, int x_lo, int x_hi);

  /// Derives a child bundle after a split on the X axis: the child covers
  /// global X-intervals [x_lo, x_hi); columns in [full_lo, full_hi) are
  /// copied from this bundle, the rest start at zero (partial alive
  /// columns are filled later by buffer flushes). Only valid for
  /// bivariate bundles.
  HistBundle DeriveXRange(int x_lo, int x_hi, int full_lo, int full_hi) const;

  bool bivariate() const { return bivariate_; }
  AttrId x_attr() const { return x_attr_; }
  int x_lo() const { return x_lo_; }
  int x_hi() const { return x_hi_; }

  /// Adds record `r` of `ds` to every histogram of the bundle. The
  /// record's X interval must lie inside [x_lo, x_hi) for bivariate
  /// bundles. `DS` is any record store exposing `numeric(a, r)`,
  /// `categorical(a, r)` and `label(r)` — the in-memory Dataset, or
  /// the block/stash stores of the out-of-core training path.
  template <class DS>
  void Add(const DS& ds, const std::vector<IntervalGrid>& grids, RecordId r) {
    const Schema& schema = *schema_;
    const ClassId label = ds.label(r);
    if (!bivariate_) {
      for (AttrId a = 0; a < schema.num_attrs(); ++a) {
        const int row = schema.is_numeric(a)
                            ? grids[a].IntervalOf(ds.numeric(a, r))
                            : ds.categorical(a, r);
        hists_[a].Add(row, label);
      }
      return;
    }
    const int gx = grids[x_attr_].IntervalOf(ds.numeric(x_attr_, r));
    assert(gx >= x_lo_ && gx < x_hi_);
    const int x = gx - x_lo_;
    for (AttrId a = 0; a < schema.num_attrs(); ++a) {
      if (a == x_attr_) continue;
      const int y = schema.is_numeric(a)
                        ? grids[a].IntervalOf(ds.numeric(a, r))
                        : ds.categorical(a, r);
      matrices_[a].Add(x, y, label);
    }
  }

  /// Record-major add through the bin-code cache: same effect as Add but
  /// the interval index is a 1-2 byte load instead of a binary search.
  /// Used where records arrive one at a time with interleaved routing
  /// (pending-buffer flushes), where batching cannot help.
  void AddCoded(const BinCodeCache& codes, RecordId r) {
    const Schema& schema = *schema_;
    const ClassId label = codes.label(r);
    if (!bivariate_) {
      for (AttrId a = 0; a < schema.num_attrs(); ++a) {
        hists_[a].Add(codes.code(a, r), label);
      }
      return;
    }
    const int gx = codes.code(x_attr_, r);
    assert(gx >= x_lo_ && gx < x_hi_);
    const int x = gx - x_lo_;
    for (AttrId a = 0; a < schema.num_attrs(); ++a) {
      if (a == x_attr_) continue;
      matrices_[a].Add(x, codes.code(a, r), label);
    }
  }

  /// Attribute-major batch accumulation: adds the `n` records of `rids`
  /// to every histogram of the bundle using the hist/hist_kernels.h
  /// kernels — the batch's labels (and X rows, for bivariate bundles)
  /// are gathered once into `scratch`, then each attribute's histogram
  /// is filled by one tight loop over the batch. Byte-for-byte the same
  /// counts as calling Add record by record.
  void AccumulateBatch(const BinCodeCache& codes, const RecordId* rids,
                       size_t n, KernelScratch* scratch);

  /// The 1-D class histogram of attribute `a`:
  ///  - univariate: the stored histogram (numeric rows are global
  ///    intervals);
  ///  - bivariate, a == x_attr: the X marginal (rows are the LOCAL
  ///    intervals x_lo..x_hi-1);
  ///  - bivariate, a != x_attr: the Y marginal of matrix `a` (rows are
  ///    global intervals / categorical values).
  Histogram1D HistFor(AttrId a) const;

  /// Bivariate only: the matrix pairing X with attribute `a` (a !=
  /// x_attr).
  const HistogramMatrix& matrix(AttrId a) const { return matrices_[a]; }

  /// Raw per-attribute storage, exposed for the distributed-training
  /// wire layer (io/wire.cc), which ships and merges histogram cells
  /// directly. Univariate bundles populate hists(), bivariate ones
  /// matrices(); the other vector is empty.
  std::vector<Histogram1D>& hists() { return hists_; }
  const std::vector<Histogram1D>& hists() const { return hists_; }
  std::vector<HistogramMatrix>& matrices() { return matrices_; }
  const std::vector<HistogramMatrix>& matrices() const { return matrices_; }

  /// Adds every histogram of `other` into this bundle. Both bundles must
  /// have identical shape (same variant, X attribute and X range).
  void MergeSameShape(const HistBundle& other);

  /// Subtracts every histogram of `other` (identical shape, cell-wise
  /// lower bound) from this bundle. Sibling subtraction derives the
  /// larger child of a split as parent-minus-sibling: the parent's
  /// records partition exactly into its two children, so the result is
  /// the same integer counts a direct scan would produce.
  void SubtractSameShape(const HistBundle& other);

  /// True when `other` has this bundle's exact shape (variant, X
  /// attribute, X range) — the precondition of MergeSameShape /
  /// SubtractSameShape. Univariate bundles of one build always match;
  /// bivariate ones match only when the X axis and covered X range agree.
  bool SameShapeAs(const HistBundle& other) const {
    return bivariate_ == other.bivariate_ && x_attr_ == other.x_attr_ &&
           x_lo_ == other.x_lo_ && x_hi_ == other.x_hi_;
  }

  /// An empty bundle of this bundle's exact shape (variant, X attribute,
  /// X range, histogram/matrix dimensions) with all counts zero. Parallel
  /// scans accumulate into per-shard clones and MergeSameShape them back
  /// in deterministic order.
  HistBundle CloneEmptyShape() const;

  /// Per-class record counts of the whole bundle.
  std::vector<int64_t> ClassTotals() const;

  int64_t MemoryBytes() const;

 private:
  bool bivariate_ = false;
  AttrId x_attr_ = kInvalidAttr;
  int x_lo_ = 0;
  int x_hi_ = 0;
  const Schema* schema_ = nullptr;
  std::vector<Histogram1D> hists_;         // univariate
  std::vector<HistogramMatrix> matrices_;  // bivariate, indexed by attr
};

}  // namespace cmp

#endif  // CMP_CMP_BUNDLE_H_
