#ifndef CMP_CMP_PAIRS_H_
#define CMP_CMP_PAIRS_H_

#include <vector>

#include "common/dataset.h"
#include "io/scan.h"
#include "tree/split.h"

namespace cmp {

/// A linear relationship a*x + b*y <= c discovered between two numeric
/// attributes, with the gini of the induced binary partition and the
/// node's gini without any split for comparison.
struct PairRelation {
  AttrId x = kInvalidAttr;
  AttrId y = kInvalidAttr;
  Split split;
  /// Three-way matrix gini of the line (under / above / crossed cells).
  double gini = 1.0;
  /// gini(S) of the whole dataset (no split), for judging the gain.
  double base_gini = 1.0;
};

/// Options for all-pairs linear-relationship discovery.
struct PairDiscoveryOptions {
  /// Coarse intervals per axis for the pairwise matrices. N numeric
  /// attributes need N(N-1)/2 matrices of grid^2 cells each, so this is
  /// deliberately small.
  int grid = 40;
  /// Keep only relations whose line gini is at least this fraction below
  /// the dataset's own gini.
  double min_gain = 0.1;
};

/// Addresses the limitation the paper states in Section 2.3: CMP's
/// per-node matrices all share one X axis, so only N-1 of the N(N-1)/2
/// attribute pairs are visible to the linear-split search. This routine
/// builds ALL pairwise matrices (at coarse resolution) in a single scan
/// of the dataset and runs the intercept-walking line search on each,
/// returning the detected relations ranked by gini (best first). Usable
/// standalone as a relationship-mining API, and by CmpBuilder at the
/// root when CmpOptions::all_pairs_root is set.
std::vector<PairRelation> DiscoverLinearRelations(
    const Dataset& ds, const PairDiscoveryOptions& options = {},
    ScanTracker* tracker = nullptr);

}  // namespace cmp

#endif  // CMP_CMP_PAIRS_H_
