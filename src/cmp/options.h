#ifndef CMP_CMP_OPTIONS_H_
#define CMP_CMP_OPTIONS_H_

#include "hist/grids.h"
#include "tree/builder.h"

namespace cmp {

/// Which member of the CMP family to run (Section 2 of the paper).
enum class CmpVariant {
  /// Single-variable histograms + deferred exact splits.
  kS,
  /// kS + bivariate histogram matrices + split prediction (multiple
  /// levels per scan).
  kB,
  /// kB + linear-combination splits a*x + b*y <= c.
  kFull,
};

/// Options of the CMP family builders.
struct CmpOptions {
  BuilderOptions base;
  CmpVariant variant = CmpVariant::kFull;
  /// Intervals per numeric attribute ("our experiments divide an
  /// attribute domain into 100 to 120 intervals").
  int intervals = 100;
  /// How the interval grid is built: equal-depth quantiling (the paper's
  /// choice) or equal-width ranges.
  Discretization discretization = Discretization::kEqualDepth;
  /// Maximum number of alive intervals kept per split (N in the paper;
  /// "in most cases, limiting N ... to at most 2, is enough").
  int max_alive = 2;
  /// Linear splits are only searched when the best univariate gini is
  /// above this threshold (the paper's "already lower than a certain
  /// threshold" heuristic).
  double linear_skip_gini = 0.1;
  /// A linear split is adopted when its gini is at least this fraction
  /// smaller than the best univariate gini ("say 20% smaller").
  double linear_gain = 0.2;
  /// The intercept walk runs on a matrix coarsened to at most this many
  /// intervals per axis (implementation knob; the full grid would make
  /// each line evaluation quadratically more expensive without changing
  /// which relationships are detected).
  int linear_grid = 32;
  /// Build the pass-invariant bin-code cache after grid construction and
  /// accumulate histograms from the 1-2 byte codes with attribute-major
  /// batch kernels (hist/bin_codes.h, hist/hist_kernels.h). Off falls
  /// back to the record-major IntervalOf path; the tree is byte-identical
  /// either way. The cache also disables itself when an attribute needs
  /// more than 16 bits per code.
  bool bin_code_cache = true;
  /// Derive the larger child of each fresh split pair as parent minus its
  /// scanned sibling instead of accumulating it during the scan (exact
  /// integer counts, byte-identical trees; univariate bundles always
  /// qualify, bivariate ones only when both children keep the parent's
  /// full X axis).
  bool sibling_subtraction = true;
  /// Shard count for parallel scan passes. 0 = auto: the pool's
  /// parallelism, additionally capped at the hardware thread count so an
  /// oversubscribed pool on a small machine does not pay mirror-merge
  /// overhead for shards that cannot run concurrently. The tree is
  /// byte-identical for every value.
  int scan_shards = 0;
  /// Extension beyond the paper (addressing its Section 2.3 limitation):
  /// when true, the full CMP variant additionally builds ALL N(N-1)/2
  /// coarse pairwise matrices during the initial pass and may adopt a
  /// linear split at the root between a pair the regular matrices (which
  /// share one X axis) cannot see.
  bool all_pairs_root = false;
};

}  // namespace cmp

#endif  // CMP_CMP_OPTIONS_H_
