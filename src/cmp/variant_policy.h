#ifndef CMP_CMP_VARIANT_POLICY_H_
#define CMP_CMP_VARIANT_POLICY_H_

#include "cmp/options.h"

namespace cmp {

/// The behavioral differences between CMP-S, CMP-B and full CMP as an
/// explicit policy object. The build pipeline consults these flags
/// instead of re-deriving them from CmpVariant at every decision point,
/// so each variant's behavior is stated once, here, rather than spread
/// across interleaved `if (variant)` branches.
struct VariantPolicy {
  /// Bivariate histogram matrices sharing a predicted X axis instead of
  /// independent 1-D histograms (CMP-B and full CMP; Section 2.2).
  bool use_matrices = false;
  /// Search the matrices for linear-combination splits a*x + b*y <= c
  /// when no univariate split is good enough (full CMP only).
  bool search_linear = false;
  /// When a split lands on a bundle's own X axis with several alive
  /// intervals, keep only the best-estimated one so the children's
  /// sub-matrices can be derived and split in the same round (Figure 10,
  /// line 18). CMP-S keeps the full alive set and stays maximally exact.
  bool trim_alive_on_x = false;
  /// Display name for benchmark tables and observer reports.
  const char* display_name = "CMP";

  static constexpr VariantPolicy For(CmpVariant variant) {
    switch (variant) {
      case CmpVariant::kS:
        return {false, false, false, "CMP-S"};
      case CmpVariant::kB:
        return {true, false, true, "CMP-B"};
      case CmpVariant::kFull:
        break;
    }
    return {true, true, true, "CMP"};
  }
};

}  // namespace cmp

#endif  // CMP_CMP_VARIANT_POLICY_H_
