#ifndef CMP_CMP_LINEAR_H_
#define CMP_CMP_LINEAR_H_

#include "hist/histogram2d.h"
#include "hist/quantiles.h"
#include "tree/split.h"

namespace cmp {

/// Result of a linear-combination split search over one histogram matrix.
struct LinearSplitResult {
  bool valid = false;
  /// Coefficients of a*x + b*y <= c (x = matrix X attribute, y = Y
  /// attribute, value space).
  double a = 0.0;
  double b = 0.0;
  double c = 0.0;
  /// Three-way gini of the partition (under / above / crossed cells).
  double gini = 1.0;
};

/// Searches for the best splitting line over the matrix `m`, whose X
/// columns cover global intervals [x_lo, x_lo + m.x_intervals()) of
/// `gx` and whose Y rows cover all of `gy` (both attributes numeric).
///
/// Implements the intercept-walking greedy of the paper (Figure 12):
/// starting from the smallest intercepts, the x- or y-intercept is
/// repeatedly advanced to whichever boundary cut lowers
/// gini^D(S, line) = Nu/N gini(Su) + Na/N gini(Sa) + No/N gini(So)
/// more, where Su/Sa/So are the cells under, above and crossed by the
/// line. Both negative-slope (x/X0 + y/Y0 = 1) and positive-slope lines
/// (searched on the Y-mirrored matrix) are tried; the best is returned.
///
/// `max_grid`: the matrix is first coarsened so that neither axis exceeds
/// this many intervals (adjacent-interval merging), bounding the cost of
/// each line evaluation.
LinearSplitResult FindBestLine(const HistogramMatrix& m,
                               const IntervalGrid& gx, int x_lo,
                               const IntervalGrid& gy, int max_grid);

}  // namespace cmp

#endif  // CMP_CMP_LINEAR_H_
