#include "cmp/pairs.h"

#include <algorithm>

#include "cmp/linear.h"
#include "gini/gini.h"
#include "hist/grids.h"
#include "hist/histogram2d.h"

namespace cmp {

std::vector<PairRelation> DiscoverLinearRelations(
    const Dataset& ds, const PairDiscoveryOptions& options,
    ScanTracker* tracker) {
  std::vector<PairRelation> out;
  const Schema& schema = ds.schema();
  const std::vector<AttrId> numeric = schema.NumericAttrs();
  if (numeric.size() < 2 || ds.num_records() == 0) return out;

  // Coarse equal-depth grids (one quantiling pass, charged by the
  // helper).
  const std::vector<IntervalGrid> grids =
      ComputeGrids(ds, options.grid, Discretization::kEqualDepth, tracker);

  // One matrix per unordered pair of numeric attributes with a usable
  // grid.
  std::vector<AttrId> axes;
  for (AttrId a : numeric) {
    if (grids[a].num_intervals() >= 2) axes.push_back(a);
  }
  const int k = static_cast<int>(axes.size());
  if (k < 2) return out;

  std::vector<HistogramMatrix> matrices;
  matrices.reserve(static_cast<size_t>(k) * (k - 1) / 2);
  for (int i = 0; i < k; ++i) {
    for (int j = i + 1; j < k; ++j) {
      matrices.emplace_back(grids[axes[i]].num_intervals(),
                            grids[axes[j]].num_intervals(),
                            schema.num_classes());
    }
  }

  // Single pass fills every pairwise matrix.
  if (tracker != nullptr) tracker->ChargeScan(ds);
  {
    std::vector<int> iv(k);
    for (RecordId r = 0; r < ds.num_records(); ++r) {
      for (int i = 0; i < k; ++i) {
        iv[i] = grids[axes[i]].IntervalOf(ds.numeric(axes[i], r));
      }
      const ClassId label = ds.label(r);
      size_t m = 0;
      for (int i = 0; i < k; ++i) {
        for (int j = i + 1; j < k; ++j) {
          matrices[m++].Add(iv[i], iv[j], label);
        }
      }
    }
  }
  if (tracker != nullptr) {
    int64_t bytes = 0;
    for (const HistogramMatrix& m : matrices) bytes += m.MemoryBytes();
    tracker->NotePeakMemory(bytes);
  }

  const double base = Gini(ds.ClassCounts());
  size_t m = 0;
  for (int i = 0; i < k; ++i) {
    for (int j = i + 1; j < k; ++j, ++m) {
      const LinearSplitResult line = FindBestLine(
          matrices[m], grids[axes[i]], 0, grids[axes[j]], options.grid);
      if (!line.valid) continue;
      if (line.gini >= (1.0 - options.min_gain) * base) continue;
      PairRelation rel;
      rel.x = axes[i];
      rel.y = axes[j];
      rel.split = Split::Linear(axes[i], axes[j], line.a, line.b, line.c);
      rel.gini = line.gini;
      rel.base_gini = base;
      out.push_back(std::move(rel));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const PairRelation& a, const PairRelation& b) {
              return a.gini < b.gini;
            });
  return out;
}

}  // namespace cmp
