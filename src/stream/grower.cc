#include "stream/grower.h"

#include <algorithm>
#include <utility>

#include "common/class_counts.h"
#include "common/timer.h"
#include "exact/exact.h"
#include "gini/categorical.h"
#include "gini/gini.h"
#include "hist/histogram1d.h"

namespace cmp {

namespace {

/// Record-store adapter over one BlockView so Split::RoutesLeft can
/// descend the tree on streamed records.
struct ViewAdapter {
  const BlockView* view;
  double numeric(AttrId a, int64_t i) const { return view->numeric[a][i]; }
  int32_t categorical(AttrId a, int64_t i) const {
    return view->categorical[a][i];
  }
};

}  // namespace

void InitLeafState(const Schema& schema, int sketch_capacity,
                   LeafSketchState* state) {
  const int nc = schema.num_classes();
  const std::vector<AttrId> numeric = schema.NumericAttrs();
  const std::vector<AttrId> categorical = schema.CategoricalAttrs();
  state->class_counts.assign(nc, 0);
  state->sketches.assign(static_cast<size_t>(nc) * numeric.size(),
                         QuantileSketch(sketch_capacity));
  state->cat_counts.resize(categorical.size());
  for (size_t t = 0; t < categorical.size(); ++t) {
    state->cat_counts[t].assign(
        static_cast<size_t>(schema.attr(categorical[t]).cardinality) * nc, 0);
  }
}

void MergeLeafState(const LeafSketchState& src, LeafSketchState* dst) {
  for (size_t c = 0; c < src.class_counts.size(); ++c) {
    dst->class_counts[c] += src.class_counts[c];
  }
  for (size_t s = 0; s < src.sketches.size(); ++s) {
    dst->sketches[s].Merge(src.sketches[s]);
  }
  for (size_t t = 0; t < src.cat_counts.size(); ++t) {
    for (size_t i = 0; i < src.cat_counts[t].size(); ++i) {
      dst->cat_counts[t][i] += src.cat_counts[t][i];
    }
  }
}

int64_t LeafStateSketchBytes(const LeafSketchState& state) {
  int64_t bytes = 0;
  for (const QuantileSketch& s : state.sketches) bytes += s.MemoryBytes();
  return bytes;
}

int64_t LeafStateMemoryBytes(const LeafSketchState& state) {
  int64_t bytes = LeafStateSketchBytes(state);
  bytes += static_cast<int64_t>(state.class_counts.capacity()) *
           sizeof(int64_t);
  for (const std::vector<int64_t>& table : state.cat_counts) {
    bytes += static_cast<int64_t>(table.capacity()) * sizeof(int64_t);
  }
  return bytes;
}

StreamGrower::StreamGrower(const Schema& schema, const StreamOptions& options,
                           DecisionTree* tree, ScanTracker* tracker,
                           TrainObserver* observer, ThreadPool* pool)
    : schema_(schema),
      options_(options),
      tree_(tree),
      tracker_(tracker),
      observer_(observer),
      pool_(pool),
      numeric_attrs_(schema.NumericAttrs()),
      categorical_attrs_(schema.CategoricalAttrs()) {
  kind_index_.assign(schema.num_attrs(), 0);
  for (size_t j = 0; j < numeric_attrs_.size(); ++j) {
    kind_index_[numeric_attrs_[j]] = static_cast<int>(j);
  }
  for (size_t t = 0; t < categorical_attrs_.size(); ++t) {
    kind_index_[categorical_attrs_[t]] = static_cast<int>(t);
  }
}

void StreamGrower::AddTrainRoot(NodeId node, int64_t expected_records) {
  FrontierNode fn;
  fn.node = node;
  const int64_t threshold = options_.base.in_memory_threshold;
  fn.mode = (threshold > 0 && expected_records <= threshold) ? Mode::kCollect
                                                             : Mode::kGrow;
  if (fn.mode == Mode::kGrow) {
    InitLeafState(schema_, options_.sketch_capacity, &fn.stats);
  }
  frontier_.emplace(node, std::move(fn));
}

void StreamGrower::AddRefitRoot(NodeId node, LeafSketchState merged,
                                const std::vector<int64_t>& new_counts) {
  int64_t new_records = 0;
  for (int64_t c : new_counts) new_records += c;
  const int64_t threshold = options_.base.in_memory_threshold;
  if (threshold > 0 && new_records <= threshold) {
    // Few new records: buffer them next pass and finish exactly. The
    // old class mass still seeds the node so its distribution keeps the
    // leaf's full history (the new records are counted exactly when the
    // buffer is finished).
    FrontierNode fn;
    fn.node = node;
    fn.mode = Mode::kCollect;
    fn.seed_counts = merged.class_counts;
    for (size_t c = 0; c < new_counts.size(); ++c) {
      fn.seed_counts[c] -= new_counts[c];
    }
    frontier_.emplace(node, std::move(fn));
  } else {
    // Enough new data to stream: the merged state stands in for a
    // completed accumulation pass, so the first split is decided
    // immediately (PlanSeededRoots) and only the descendants scan.
    FrontierNode fn;
    fn.node = node;
    fn.mode = Mode::kGrow;
    fn.stats = std::move(merged);
    frontier_.emplace(node, std::move(fn));
    seeded_roots_.push_back(node);
  }
}

StreamGrower::SplitDecision StreamGrower::DecideSplit(
    const LeafSketchState& stats, int depth) const {
  SplitDecision out;
  const std::vector<int64_t>& totals = stats.class_counts;
  const int nc = schema_.num_classes();
  int64_t total = 0;
  for (int64_t c : totals) total += c;
  if (depth >= options_.base.max_depth ||
      total < options_.base.min_split_records) {
    return out;
  }
  const double node_gini = Gini(totals);
  if (node_gini <= 0.0) return out;  // pure

  const size_t nn = numeric_attrs_.size();
  double best_gini = node_gini;
  // Ascending attribute order; within a numeric attribute ascending
  // boundary order; strict improvement only. Everything here is a pure
  // function of deterministic sketch state, so the chosen split is
  // reproducible across thread counts and reruns.
  std::vector<int64_t> prefix;
  std::vector<double> ginis;
  for (AttrId a = 0; a < schema_.num_attrs(); ++a) {
    if (schema_.is_numeric(a)) {
      const size_t j = static_cast<size_t>(kind_index_[a]);
      QuantileSketch combined(options_.sketch_capacity);
      for (int c = 0; c < nc; ++c) {
        combined.Merge(stats.sketches[static_cast<size_t>(c) * nn + j]);
      }
      if (combined.empty() || combined.min_value() == combined.max_value()) {
        continue;
      }
      const IntervalGrid grid = combined.ToEqualDepthGrid(options_.intervals);
      const std::vector<double>& cuts = grid.boundaries();
      if (cuts.empty()) continue;
      const int nb = static_cast<int>(cuts.size());
      prefix.assign(static_cast<size_t>(nb) * nc, 0);
      for (int c = 0; c < nc; ++c) {
        const QuantileSketch& s =
            stats.sketches[static_cast<size_t>(c) * nn + j];
        for (int b = 0; b < nb; ++b) {
          prefix[static_cast<size_t>(b) * nc + c] =
              s.EstimatedRankAtMost(cuts[b]);
        }
      }
      ginis.assign(nb, 1.0);
      ScanBoundaryGinis(prefix.data(), nb, nc, totals.data(), ginis.data());
      for (int b = 0; b < nb; ++b) {
        const int64_t* row = prefix.data() + static_cast<size_t>(b) * nc;
        int64_t left_total = 0;
        for (int c = 0; c < nc; ++c) left_total += row[c];
        if (left_total <= 0 || left_total >= total) continue;
        if (ginis[b] < best_gini) {
          best_gini = ginis[b];
          out.split = true;
          out.def = Split::Numeric(a, cuts[b]);
          out.left_counts.assign(row, row + nc);
        }
      }
    } else {
      const size_t t = static_cast<size_t>(kind_index_[a]);
      const int cardinality = schema_.attr(a).cardinality;
      Histogram1D hist(cardinality, nc);
      const std::vector<int64_t>& table = stats.cat_counts[t];
      for (int v = 0; v < cardinality; ++v) {
        for (int c = 0; c < nc; ++c) {
          hist.Add(v, c, table[static_cast<size_t>(v) * nc + c]);
        }
      }
      const CategoricalSplit cs = BestCategoricalSplit(hist);
      if (cs.valid && cs.gini < best_gini) {
        best_gini = cs.gini;
        out.split = true;
        out.def = Split::Categorical(a, cs.left_subset);
        out.left_counts.assign(nc, 0);
        for (int v = 0; v < cardinality; ++v) {
          if (cs.left_subset[v] == 0) continue;
          for (int c = 0; c < nc; ++c) {
            out.left_counts[c] += table[static_cast<size_t>(v) * nc + c];
          }
        }
      }
    }
  }
  if (out.split) {
    out.right_counts.assign(nc, 0);
    for (int c = 0; c < nc; ++c) {
      out.right_counts[c] = totals[c] - out.left_counts[c];
    }
  }
  return out;
}

void StreamGrower::EnqueueChild(NodeId child,
                                const std::vector<int64_t>& est_counts) {
  int64_t est_total = 0;
  for (int64_t c : est_counts) est_total += c;
  FrontierNode fn;
  fn.node = child;
  const int64_t threshold = options_.base.in_memory_threshold;
  fn.mode = (threshold > 0 && est_total <= threshold) ? Mode::kCollect
                                                      : Mode::kGrow;
  if (fn.mode == Mode::kGrow) {
    InitLeafState(schema_, options_.sketch_capacity, &fn.stats);
  }
  next_frontier_.emplace(child, std::move(fn));
}

void StreamGrower::ApplyDecision(FrontierNode& fn,
                                 const SplitDecision& decision) {
  TreeNode& node = tree_->mutable_node(fn.node);
  if (!decision.split) {
    node.is_leaf = true;
    node.leaf_class = Majority(node.class_counts);
    LeafSketchState state = std::move(fn.stats);
    if (state.class_counts.empty()) {
      // Collect-turned-leaf or zero-record child: keep the node's
      // (possibly estimated) distribution in the sidecar entry.
      InitLeafState(schema_, options_.sketch_capacity, &state);
    }
    state.node = fn.node;
    state.class_counts = node.class_counts;
    leaf_states_[fn.node] = std::move(state);
    return;
  }
  TreeNode left;
  left.depth = node.depth + 1;
  left.class_counts = decision.left_counts;
  left.leaf_class = Majority(left.class_counts);
  TreeNode right;
  right.depth = node.depth + 1;
  right.class_counts = decision.right_counts;
  right.leaf_class = Majority(right.class_counts);
  const NodeId left_id = tree_->AddNode(std::move(left));
  const NodeId right_id = tree_->AddNode(std::move(right));
  TreeNode& parent = tree_->mutable_node(fn.node);  // AddNode may realloc
  parent.is_leaf = false;
  parent.split = decision.def;
  parent.left = left_id;
  parent.right = right_id;
  EnqueueChild(left_id, decision.left_counts);
  EnqueueChild(right_id, decision.right_counts);
}

void StreamGrower::FinishCollect(FrontierNode& fn) {
  const size_t nn = numeric_attrs_.size();
  const size_t ncat = categorical_attrs_.size();
  const int nc = schema_.num_classes();
  const int64_t nrec = static_cast<int64_t>(fn.label_buf.size());

  std::vector<int64_t> exact_counts(nc, 0);
  for (ClassId c : fn.label_buf) exact_counts[c]++;
  TreeNode& node = tree_->mutable_node(fn.node);
  node.class_counts = exact_counts;
  if (!fn.seed_counts.empty()) {
    // Refit root: the distribution keeps the leaf's full history even
    // though only the new records regrow the subtree.
    for (int c = 0; c < nc; ++c) node.class_counts[c] += fn.seed_counts[c];
  }
  node.leaf_class = Majority(node.class_counts);

  if (nrec == 0) {
    LeafSketchState state;
    InitLeafState(schema_, options_.sketch_capacity, &state);
    state.node = fn.node;
    state.class_counts = node.class_counts;
    leaf_states_[fn.node] = std::move(state);
    return;
  }

  Dataset ds(schema_);
  ds.Reserve(nrec);
  std::vector<double> nvals(nn);
  std::vector<int32_t> cvals(ncat);
  std::vector<RecordId> rids(nrec);
  for (int64_t r = 0; r < nrec; ++r) {
    for (size_t j = 0; j < nn; ++j) {
      nvals[j] = fn.numeric_buf[static_cast<size_t>(r) * nn + j];
    }
    for (size_t t = 0; t < ncat; ++t) {
      cvals[t] = fn.cat_buf[static_cast<size_t>(r) * ncat + t];
    }
    ds.Append(nvals, cvals, fn.label_buf[r]);
    rids[r] = r;
  }
  BuildExactSubtree(ds, rids, options_.base, tree_, fn.node, tracker_, pool_);

  // Harvest per-leaf sidecar states for the regrown subtree by routing
  // the buffered records down it — exact, not sketch-approximated.
  std::map<NodeId, LeafSketchState> states;
  for (int64_t r = 0; r < nrec; ++r) {
    NodeId id = fn.node;
    while (!tree_->node(id).is_leaf) {
      const TreeNode& cur = tree_->node(id);
      id = cur.split.RoutesLeft(ds, r) ? cur.left : cur.right;
    }
    auto [it, inserted] = states.try_emplace(id);
    LeafSketchState& state = it->second;
    if (inserted) {
      InitLeafState(schema_, options_.sketch_capacity, &state);
      state.node = id;
    }
    const ClassId c = ds.label(r);
    state.class_counts[c]++;
    for (size_t j = 0; j < nn; ++j) {
      state.sketches[static_cast<size_t>(c) * nn + j].Add(
          ds.numeric(numeric_attrs_[j], r));
    }
    for (size_t t = 0; t < ncat; ++t) {
      const int32_t v = ds.categorical(categorical_attrs_[t], r);
      state.cat_counts[t][static_cast<size_t>(v) * nc + c]++;
    }
  }
  // Every leaf of the regrown subtree received at least one record
  // (exact splits never produce an empty side), but the root itself may
  // have stayed a leaf; either way `states` covers all of them.
  for (auto& [id, state] : states) {
    if (id == fn.node && !fn.seed_counts.empty()) {
      state.class_counts = tree_->node(id).class_counts;
    }
    leaf_states_[id] = std::move(state);
  }
}

void StreamGrower::PlanSeededRoots() {
  if (seeded_roots_.empty()) return;
  std::sort(seeded_roots_.begin(), seeded_roots_.end());
  for (NodeId id : seeded_roots_) {
    auto it = frontier_.find(id);
    FrontierNode fn = std::move(it->second);
    frontier_.erase(it);
    tree_->mutable_node(id).class_counts = fn.stats.class_counts;
    const SplitDecision decision =
        DecideSplit(fn.stats, tree_->node(id).depth);
    ApplyDecision(fn, decision);
  }
  seeded_roots_.clear();
  for (auto& [id, fn] : next_frontier_) {
    frontier_.emplace(id, std::move(fn));
  }
  next_frontier_.clear();
}

bool StreamGrower::ScanPass(BlockSource& source, PassObservation* po,
                            std::string* error) {
  source.Reset();
  const size_t nn = numeric_attrs_.size();
  const size_t ncat = categorical_attrs_.size();
  const int nc = schema_.num_classes();
  BlockView view;
  // Single-threaded left fold in record order: sketch state (and with
  // it the whole grown tree) is independent of thread count and block
  // size by construction.
  while (source.NextBlock(&view)) {
    const ViewAdapter ad{&view};
    for (int64_t i = 0; i < view.count; ++i) {
      NodeId id = 0;
      while (!tree_->node(id).is_leaf) {
        const TreeNode& cur = tree_->node(id);
        id = cur.split.RoutesLeft(ad, i) ? cur.left : cur.right;
      }
      auto it = frontier_.find(id);
      if (it == frontier_.end()) continue;
      FrontierNode& fn = it->second;
      const ClassId c = view.labels[i];
      if (fn.mode == Mode::kGrow) {
        fn.stats.class_counts[c]++;
        for (size_t j = 0; j < nn; ++j) {
          fn.stats.sketches[static_cast<size_t>(c) * nn + j].Add(
              view.numeric[numeric_attrs_[j]][i]);
        }
        for (size_t t = 0; t < ncat; ++t) {
          const int32_t v = view.categorical[categorical_attrs_[t]][i];
          fn.stats.cat_counts[t][static_cast<size_t>(v) * nc + c]++;
        }
      } else {
        for (size_t j = 0; j < nn; ++j) {
          fn.numeric_buf.push_back(view.numeric[numeric_attrs_[j]][i]);
        }
        for (size_t t = 0; t < ncat; ++t) {
          fn.cat_buf.push_back(view.categorical[categorical_attrs_[t]][i]);
        }
        fn.label_buf.push_back(c);
      }
    }
  }
  if (source.failed()) {
    if (error != nullptr) *error = "stream: record source read failed";
    return false;
  }
  const int64_t n = source.num_records();
  po->records_scanned = n;
  if (options_.real_io) {
    const int64_t delta = source.bytes_read() - real_bytes_charged_;
    tracker_->ChargeRealBytes(delta);
    real_bytes_charged_ += delta;
    po->bytes_read = delta;
  } else {
    tracker_->ChargeScan(n, schema_);
    po->bytes_read = n * schema_.RecordBytes();
  }
  return true;
}

bool StreamGrower::Run(BlockSource& source, std::string* error) {
  ran_ = true;
  if (options_.real_io) tracker_->set_real_io(true);
  real_bytes_charged_ = source.bytes_read();
  PlanSeededRoots();
  while (!frontier_.empty()) {
    PassObservation po;
    po.pass = next_pass_index_++;
    for (const auto& [id, fn] : frontier_) {
      if (fn.mode == Mode::kGrow) {
        po.frontier_fresh++;
      } else {
        po.frontier_collect++;
      }
    }

    Timer scan_timer;
    if (!ScanPass(source, &po, error)) return false;
    po.scan_seconds = scan_timer.Seconds();

    // Frontier memory high-water: sketch state plus collect buffers.
    int64_t memory = 0;
    for (const auto& [id, fn] : frontier_) {
      if (fn.mode == Mode::kGrow) {
        const int64_t sketch_bytes = LeafStateSketchBytes(fn.stats);
        po.sketch_bytes += sketch_bytes;
        memory += LeafStateMemoryBytes(fn.stats);
      } else {
        const int64_t buffered = static_cast<int64_t>(fn.label_buf.size());
        po.buffered_records += buffered;
        const int64_t buffer_bytes =
            static_cast<int64_t>(fn.numeric_buf.capacity()) * sizeof(double) +
            static_cast<int64_t>(fn.cat_buf.capacity()) * sizeof(int32_t) +
            static_cast<int64_t>(fn.label_buf.capacity()) * sizeof(ClassId);
        po.buffer_bytes += buffer_bytes;
        memory += buffer_bytes;
        tracker_->ChargeBuffered(buffered);
      }
    }
    tracker_->NotePeakMemory(memory);

    // Plan phase A: split analysis is a pure function of each grow
    // node's stats, so it fans out; phase B applies serially in
    // ascending node order (node numbering, sidecar entries and
    // tie-breaks are exactly the serial build's).
    std::vector<FrontierNode*> grow_nodes;
    for (auto& [id, fn] : frontier_) {
      if (fn.mode == Mode::kGrow) {
        // A grow node that received records this pass gets its exact
        // distribution; a zero-record child keeps the parent-estimated
        // counts it was created with.
        int64_t seen = 0;
        for (int64_t c : fn.stats.class_counts) seen += c;
        if (seen > 0) {
          tree_->mutable_node(id).class_counts = fn.stats.class_counts;
        } else {
          fn.stats.class_counts = tree_->node(id).class_counts;
        }
        grow_nodes.push_back(&fn);
      }
    }
    std::vector<SplitDecision> decisions(grow_nodes.size());
    Timer plan_timer;
    auto analyze = [&](int64_t i) {
      int64_t seen = 0;
      for (int64_t c : grow_nodes[i]->stats.class_counts) seen += c;
      // A zero-record child has nothing to grow from; it stays a leaf
      // with its estimated distribution.
      const NodeId id = grow_nodes[i]->node;
      decisions[i] = seen > 0 ? DecideSplit(grow_nodes[i]->stats,
                                            tree_->node(id).depth)
                              : SplitDecision{};
    };
    if (pool_ != nullptr && pool_->parallelism() > 1 &&
        grow_nodes.size() > 1) {
      pool_->ParallelFor(static_cast<int64_t>(grow_nodes.size()), 1,
                         [&](int64_t lo, int64_t hi) {
                           for (int64_t i = lo; i < hi; ++i) analyze(i);
                         });
    } else {
      for (size_t i = 0; i < grow_nodes.size(); ++i) {
        analyze(static_cast<int64_t>(i));
      }
    }
    po.plan_seconds = plan_timer.Seconds();

    Timer finish_timer;
    size_t gi = 0;
    for (auto& [id, fn] : frontier_) {
      if (fn.mode == Mode::kGrow) {
        ApplyDecision(fn, decisions[gi++]);
      } else {
        FinishCollect(fn);
      }
    }
    po.finish_seconds = finish_timer.Seconds();

    frontier_ = std::move(next_frontier_);
    next_frontier_.clear();

    po.tree_nodes = tree_->num_nodes();
    if (observer_ != nullptr) observer_->OnPass(po);
  }
  return true;
}

}  // namespace cmp
