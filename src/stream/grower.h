#ifndef CMP_STREAM_GROWER_H_
#define CMP_STREAM_GROWER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/schema.h"
#include "common/thread_pool.h"
#include "common/types.h"
#include "io/block_source.h"
#include "io/scan.h"
#include "io/sketch_sidecar.h"
#include "tree/builder.h"
#include "tree/observer.h"
#include "tree/tree.h"

namespace cmp {

/// Knobs of the streaming CMP trainer (`cmp-stream`) and of refit, both
/// of which run on the StreamGrower below.
struct StreamOptions {
  BuilderOptions base;
  /// Grid resolution: candidate split boundaries per numeric attribute.
  int intervals = 100;
  /// Per-level quantile sketch capacity k (hist/sketch.h); larger k =
  /// tighter rank error, more memory.
  int sketch_capacity = QuantileSketch::kDefaultCapacity;
  /// True when the block source reads real bytes from storage (CMPT
  /// table); false for in-memory sources, which are charged with the
  /// disk-simulation model instead.
  bool real_io = false;
};

// -- Per-node statistics ------------------------------------------------
// The accumulation state of one frontier node is exactly the sidecar's
// LeafSketchState (io/sketch_sidecar.h): exact class counts, one
// quantile sketch per (class, numeric attribute), exact per-class count
// tables for the categorical attributes. Growing and persisting share
// one representation, which is what makes refit "resume training".

/// Shapes `state` (empty counts/sketches/tables) for `schema`.
void InitLeafState(const Schema& schema, int sketch_capacity,
                   LeafSketchState* state);

/// Folds `src` into `dst` (counts add, sketches merge, tables add).
/// Deterministic: a pure function of the two states.
void MergeLeafState(const LeafSketchState& src, LeafSketchState* dst);

/// Resident bytes of the state (sketches dominate).
int64_t LeafStateMemoryBytes(const LeafSketchState& state);

/// Bytes of sketch state only (the `sketch_bytes` observability field).
int64_t LeafStateSketchBytes(const LeafSketchState& state);

// -- The grower ---------------------------------------------------------

/// Level-wise streaming tree grower: one sequential pass over the record
/// stream per tree level. Each pass routes every record down the tree to
/// the frontier; frontier nodes either accumulate bounded sketch
/// statistics ("grow" mode) or buffer their few records outright
/// ("collect" mode, when the partition fits
/// BuilderOptions::in_memory_threshold — finished exactly, like every
/// other builder in the library). After the pass, grow nodes pick the
/// gini-best split from per-class sketch ranks at the sketch-grid
/// boundaries (numeric) and exact count tables (categorical); collect
/// nodes are finished by BuildExactSubtree.
///
/// Determinism: record ingestion is a single-threaded left fold in
/// ascending record order — sketch state is therefore independent of
/// thread count, block size, and worker layout by construction. Worker
/// threads only parallelize the pure per-node split analysis (results
/// applied in node-id order) and the exact splitter's per-attribute
/// search, both of which are order-restoring. The grown tree is
/// byte-identical for any `num_threads` and any block size.
///
/// The grower never runs global MDL pruning: pruning would Compact()
/// the node array and renumber nodes, invalidating the NodeId-keyed
/// sketch sidecar (and, during refit, the contract that pre-existing
/// interior nodes keep their bytes). BuilderOptions::prune is still
/// honored inside the exact finishes via the PUBLIC(1) stop test.
class StreamGrower {
 public:
  StreamGrower(const Schema& schema, const StreamOptions& options,
               DecisionTree* tree, ScanTracker* tracker,
               TrainObserver* observer, ThreadPool* pool);

  /// Seeds leaf `node` of the tree into the frontier for a fresh build
  /// or a from-scratch regrow. `expected_records` picks grow vs collect
  /// mode against in_memory_threshold.
  void AddTrainRoot(NodeId node, int64_t expected_records);

  /// Seeds drifted leaf `node` with `merged` statistics (old sidecar
  /// state folded with the stats of the new records routed to it): the
  /// node's first split is decided from the merged state before any
  /// further pass, so the regrow root sees the leaf's full history while
  /// deeper levels grow from the new records alone. `new_counts` is the
  /// per-class distribution of only the new records (it picks grow vs
  /// collect mode, and lets the collect finish keep the old mass in the
  /// node's distribution without double-counting the new records).
  void AddRefitRoot(NodeId node, LeafSketchState merged,
                    const std::vector<int64_t>& new_counts);

  /// Runs scan passes until the frontier is empty. False with *error on
  /// stream read failure. May be called once.
  bool Run(BlockSource& source, std::string* error);

  /// NodeId -> final accumulated state of every leaf this grower
  /// finalized (the sidecar payload). Leaves finished inside an exact
  /// collect subtree get exact states recomputed from their buffered
  /// records.
  std::map<NodeId, LeafSketchState>& leaf_states() { return leaf_states_; }

  /// Pass index offset for observations (refit's routing pass is pass 0,
  /// which also carries the `refit_leaves_regrown` counter).
  void set_first_pass_index(int index) { next_pass_index_ = index; }

 private:
  enum class Mode { kGrow, kCollect };

  struct FrontierNode {
    NodeId node = kInvalidNode;
    Mode mode = Mode::kGrow;
    LeafSketchState stats;
    // Collect-mode record buffer (schema-order values per record).
    std::vector<double> numeric_buf;
    std::vector<int32_t> cat_buf;
    std::vector<ClassId> label_buf;
    // Refit collect roots: old class counts folded into the node's
    // counts before the exact finish.
    std::vector<int64_t> seed_counts;
  };

  struct SplitDecision {
    bool split = false;
    Split def;
    std::vector<int64_t> left_counts;
    std::vector<int64_t> right_counts;
  };

  /// Picks the gini-best split of a grow node from its statistics; a
  /// pure function (safe to evaluate in parallel across nodes).
  SplitDecision DecideSplit(const LeafSketchState& stats, int depth) const;

  /// Applies one node's decision: either finalizes the leaf or splits it
  /// and enqueues the children. Serial, in node-id order.
  void ApplyDecision(FrontierNode& fn, const SplitDecision& decision);

  /// Finishes a collect node exactly from its buffered records and
  /// harvests per-leaf sidecar states for the resulting subtree.
  void FinishCollect(FrontierNode& fn);

  void PlanSeededRoots();
  bool ScanPass(BlockSource& source, PassObservation* po, std::string* error);
  void EnqueueChild(NodeId child, const std::vector<int64_t>& est_counts);

  const Schema& schema_;
  StreamOptions options_;
  DecisionTree* tree_;
  ScanTracker* tracker_;
  TrainObserver* observer_;
  ThreadPool* pool_;

  std::vector<AttrId> numeric_attrs_;
  std::vector<AttrId> categorical_attrs_;
  // attr -> position among its kind (sketch / table indices).
  std::vector<int> kind_index_;

  // Frontier, keyed by node id (std::map: plan phase iterates in
  // ascending node order, part of the determinism argument).
  std::map<NodeId, FrontierNode> frontier_;
  // Children enqueued while the current frontier is being planned.
  std::map<NodeId, FrontierNode> next_frontier_;
  // Refit roots awaiting an immediate (pre-scan) split decision.
  std::vector<NodeId> seeded_roots_;

  std::map<NodeId, LeafSketchState> leaf_states_;

  int next_pass_index_ = 0;
  int64_t real_bytes_charged_ = 0;
  bool ran_ = false;
};

}  // namespace cmp

#endif  // CMP_STREAM_GROWER_H_
