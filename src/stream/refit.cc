#include "stream/refit.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <utility>
#include <vector>

#include "common/class_counts.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "tree/observer.h"

namespace cmp {

namespace {

struct ViewAdapter {
  const BlockView* view;
  double numeric(AttrId a, int64_t i) const { return view->numeric[a][i]; }
  int32_t categorical(AttrId a, int64_t i) const {
    return view->categorical[a][i];
  }
};

/// Total-variation distance between two count vectors' normalized
/// distributions: 0.5 * sum |p_i - q_i|, in [0, 1].
double DriftDistance(const std::vector<int64_t>& old_counts,
                     const std::vector<int64_t>& new_counts) {
  int64_t old_total = 0;
  int64_t new_total = 0;
  for (int64_t c : old_counts) old_total += c;
  for (int64_t c : new_counts) new_total += c;
  if (old_total == 0 || new_total == 0) return old_total == new_total ? 0 : 1;
  double l1 = 0.0;
  for (size_t i = 0; i < old_counts.size(); ++i) {
    l1 += std::abs(static_cast<double>(old_counts[i]) / old_total -
                   static_cast<double>(new_counts[i]) / new_total);
  }
  return 0.5 * l1;
}

/// Hoeffding-style sampling slack: with few new records the observed
/// distribution swings wildly even under a stationary concept (a pure
/// leaf receiving two noisy records measures TV distance 1). Requiring
/// the measured drift to clear threshold + eps(n), with
/// eps(n) = sqrt(ln(1/delta) / 2n), keeps the false-regrow rate under
/// control while vanishing as evidence accumulates — the same guard
/// Hoeffding-tree learners use for their split decisions.
double SamplingSlack(int64_t new_total) {
  constexpr double kDelta = 0.05;
  if (new_total <= 0) return 1.0;
  return std::sqrt(std::log(1.0 / kDelta) /
                   (2.0 * static_cast<double>(new_total)));
}

}  // namespace

bool RefitTree(DecisionTree* tree, SketchSidecar* sidecar,
               BlockSource& source, const RefitOptions& options,
               BuildStats* build_stats, RefitStats* refit_stats,
               std::string* error) {
  Timer timer;
  auto fail = [&](const std::string& msg) {
    if (error != nullptr) *error = msg;
    return false;
  };
  const Schema& schema = tree->schema();
  if (tree->empty()) return fail("refit: empty tree");
  if (!sidecar->MatchesSchema(schema)) {
    return fail("refit: sidecar does not match the tree's schema");
  }
  if (!sidecar->MatchesSchema(source.schema())) {
    return fail("refit: sidecar does not match the data's schema");
  }
  // The sidecar keys leaves by NodeId; a stale pairing (wrong tree for
  // this sidecar) must fail clean instead of regrafting at random.
  std::map<NodeId, LeafSketchState*> old_states;
  for (LeafSketchState& leaf : sidecar->leaves) {
    if (leaf.node < 0 || leaf.node >= tree->num_nodes() ||
        !tree->node(leaf.node).is_leaf) {
      return fail("refit: sidecar references a non-leaf node "
                  "(tree/sidecar mismatch)");
    }
    old_states[leaf.node] = &leaf;
  }

  // Continue with the model's own training configuration.
  StreamOptions stream_options = options.stream;
  stream_options.intervals = sidecar->intervals;
  stream_options.sketch_capacity = sidecar->sketch_capacity;

  BuildStats local_stats;
  BuildStats* stats = build_stats != nullptr ? build_stats : &local_stats;
  ScanTracker tracker(stats);
  if (stream_options.real_io) tracker.set_real_io(true);
  TrainObserver* const observer = stream_options.base.observer;
  const int64_t n = source.num_records();
  if (observer != nullptr) observer->OnBuildStart("CMP-stream-refit", n);

  // Pass 0: route every new record to its leaf, accumulating fresh
  // statistics. A sequential fold in record order, so the whole refit
  // (drift decisions included) is deterministic across reruns.
  const std::vector<AttrId> numeric_attrs = schema.NumericAttrs();
  const std::vector<AttrId> categorical_attrs = schema.CategoricalAttrs();
  const size_t nn = numeric_attrs.size();
  const size_t ncat = categorical_attrs.size();
  const int nc = schema.num_classes();
  std::map<NodeId, LeafSketchState> new_states;
  Timer scan_timer;
  const int64_t bytes_before = source.bytes_read();
  source.Reset();
  BlockView view;
  while (source.NextBlock(&view)) {
    const ViewAdapter ad{&view};
    for (int64_t i = 0; i < view.count; ++i) {
      NodeId id = 0;
      while (!tree->node(id).is_leaf) {
        const TreeNode& cur = tree->node(id);
        id = cur.split.RoutesLeft(ad, i) ? cur.left : cur.right;
      }
      auto [it, inserted] = new_states.try_emplace(id);
      LeafSketchState& state = it->second;
      if (inserted) {
        InitLeafState(schema, stream_options.sketch_capacity, &state);
        state.node = id;
      }
      const ClassId c = view.labels[i];
      state.class_counts[c]++;
      for (size_t j = 0; j < nn; ++j) {
        state.sketches[static_cast<size_t>(c) * nn + j].Add(
            view.numeric[numeric_attrs[j]][i]);
      }
      for (size_t t = 0; t < ncat; ++t) {
        const int32_t v = view.categorical[categorical_attrs[t]][i];
        state.cat_counts[t][static_cast<size_t>(v) * nc + c]++;
      }
    }
  }
  if (source.failed()) return fail("refit: record source read failed");
  if (stream_options.real_io) {
    tracker.ChargeRealBytes(source.bytes_read() - bytes_before);
  } else {
    tracker.ChargeScan(n, schema);
  }

  // Drift decisions, in ascending leaf order.
  RefitStats local_refit;
  RefitStats* rstats = refit_stats != nullptr ? refit_stats : &local_refit;
  rstats->records = n;
  rstats->leaves_touched = static_cast<int64_t>(new_states.size());
  rstats->leaves_regrown = 0;

  ThreadPool pool(stream_options.base.num_threads);
  StreamGrower grower(schema, stream_options, tree, &tracker, observer,
                      &pool);
  grower.set_first_pass_index(1);

  int64_t sketch_bytes = 0;
  int64_t state_bytes = 0;
  for (auto& [id, new_state] : new_states) {
    sketch_bytes += LeafStateSketchBytes(new_state);
    state_bytes += LeafStateMemoryBytes(new_state);
    int64_t new_total = 0;
    for (int64_t c : new_state.class_counts) new_total += c;
    const auto old_it = old_states.find(id);
    const std::vector<int64_t>& old_counts =
        old_it != old_states.end() ? old_it->second->class_counts
                                   : tree->node(id).class_counts;
    const bool regrow =
        new_total >= stream_options.base.min_split_records &&
        tree->node(id).depth < stream_options.base.max_depth &&
        DriftDistance(old_counts, new_state.class_counts) >
            options.drift_threshold + SamplingSlack(new_total);
    if (regrow) {
      rstats->leaves_regrown++;
      LeafSketchState merged;
      if (old_it != old_states.end()) {
        merged = std::move(*old_it->second);
      } else {
        InitLeafState(schema, stream_options.sketch_capacity, &merged);
        merged.class_counts = old_counts;
      }
      MergeLeafState(new_state, &merged);
      grower.AddRefitRoot(id, std::move(merged), new_state.class_counts);
      if (old_it != old_states.end()) old_states.erase(old_it);
    } else {
      // Absorb: counts and sidecar sketches advance, the leaf stays.
      TreeNode& node = tree->mutable_node(id);
      for (int c = 0; c < nc; ++c) {
        node.class_counts[c] += new_state.class_counts[c];
      }
      node.leaf_class = Majority(node.class_counts);
      if (old_it != old_states.end()) {
        MergeLeafState(new_state, old_it->second);
      } else {
        new_state.class_counts = node.class_counts;
        // Inserted into the sidecar after the regrow finishes (the
        // sidecar vector must not reallocate while old_states points
        // into it), via new_states below.
      }
    }
  }
  tracker.NotePeakMemory(state_bytes);

  if (observer != nullptr) {
    PassObservation po;
    po.pass = 0;
    po.records_scanned = n;
    po.scan_seconds = scan_timer.Seconds();
    po.bytes_read = stream_options.real_io
                        ? source.bytes_read() - bytes_before
                        : n * schema.RecordBytes();
    po.sketch_bytes = sketch_bytes;
    po.refit_leaves_regrown = rstats->leaves_regrown;
    po.frontier_fresh = rstats->leaves_touched;
    po.tree_nodes = tree->num_nodes();
    observer->OnPass(po);
  }

  if (!grower.Run(source, error)) return false;

  // Fold the refit back into the sidecar: replace regrown leaves by the
  // new subtree entries, keep absorbed/untouched entries, advance the
  // record count.
  std::map<NodeId, LeafSketchState> final_states;
  for (LeafSketchState& leaf : sidecar->leaves) {
    if (old_states.count(leaf.node) != 0) {
      final_states[leaf.node] = std::move(leaf);
    }
  }
  for (auto& [id, state] : new_states) {
    // Leaves that absorbed new records but had no sidecar entry yet.
    if (final_states.count(id) == 0 && grower.leaf_states().count(id) == 0 &&
        tree->node(id).is_leaf) {
      final_states[id] = std::move(state);
    }
  }
  for (auto& [id, state] : grower.leaf_states()) {
    final_states[id] = std::move(state);
  }
  sidecar->leaves.clear();
  sidecar->leaves.reserve(final_states.size());
  for (auto& [id, state] : final_states) {
    sidecar->leaves.push_back(std::move(state));
  }
  sidecar->records_seen += n;

  stats->tree_nodes = tree->num_nodes();
  stats->tree_depth = tree->Depth();
  stats->wall_seconds = timer.Seconds();
  if (observer != nullptr) observer->OnBuildEnd(*stats);
  return true;
}

}  // namespace cmp
