#include "stream/stream_train.h"

#include <memory>
#include <utility>

#include "common/class_counts.h"
#include "common/thread_pool.h"
#include "common/timer.h"

namespace cmp {

bool StreamTrain(BlockSource& source, const StreamOptions& options,
                 BuildResult* result, SketchSidecar* sidecar,
                 std::string* error) {
  Timer timer;
  const Schema& schema = source.schema();
  const int64_t n = source.num_records();
  result->tree = DecisionTree(schema);
  ScanTracker tracker(&result->stats);
  TrainObserver* const observer = options.base.observer;
  if (observer != nullptr) observer->OnBuildStart("CMP-stream", n);

  TreeNode root;
  root.depth = 0;
  root.class_counts.assign(schema.num_classes(), 0);
  root.leaf_class = 0;
  const NodeId root_id = result->tree.AddNode(std::move(root));
  if (sidecar != nullptr) {
    sidecar->SetSchema(schema);
    sidecar->sketch_capacity = options.sketch_capacity;
    sidecar->intervals = options.intervals;
    sidecar->records_seen = n;
    sidecar->leaves.clear();
  }
  if (n == 0) {
    result->tree.MakeLeaf(root_id);
    result->stats.wall_seconds = timer.Seconds();
    if (observer != nullptr) observer->OnBuildEnd(result->stats);
    return true;
  }

  ThreadPool pool(options.base.num_threads);
  StreamGrower grower(schema, options, &result->tree, &tracker, observer,
                      &pool);
  grower.AddTrainRoot(root_id, n);
  if (!grower.Run(source, error)) return false;

  if (sidecar != nullptr) {
    sidecar->leaves.reserve(grower.leaf_states().size());
    for (auto& [id, state] : grower.leaf_states()) {
      sidecar->leaves.push_back(std::move(state));
    }
  }
  result->stats.tree_nodes = result->tree.num_nodes();
  result->stats.tree_depth = result->tree.Depth();
  result->stats.wall_seconds = timer.Seconds();
  if (observer != nullptr) observer->OnBuildEnd(result->stats);
  return true;
}

BuildResult StreamBuilder::Build(const Dataset& train) {
  BuildResult result;
  DatasetBlockSource source(train);
  StreamOptions options = options_;
  options.real_io = false;
  std::string error;
  if (!StreamTrain(source, options, &result, &sidecar_, &error)) {
    // An in-memory source cannot fail to read; keep the contract anyway.
    result.tree = DecisionTree(train.schema());
    TreeNode root;
    root.class_counts = train.ClassCounts();
    root.leaf_class = Majority(root.class_counts);
    result.tree.AddNode(std::move(root));
  }
  return result;
}

}  // namespace cmp
