#ifndef CMP_STREAM_STREAM_TRAIN_H_
#define CMP_STREAM_STREAM_TRAIN_H_

#include <string>

#include "io/block_source.h"
#include "io/sketch_sidecar.h"
#include "stream/grower.h"
#include "tree/builder.h"

namespace cmp {

/// Streaming CMP training (`--algo cmp-stream`): one sequential pass
/// over the append-only record stream per tree level, per-node grids
/// from bounded quantile sketches instead of a pre-pass full sort —
/// O(k log(n/k)) sketch memory per (node, class, attribute), no O(n)
/// column buffer. Fills `sidecar` (when non-null) with the per-leaf
/// sketch state `cmptool refit` consumes later. False with *error on a
/// stream read failure; `result` is then unusable.
bool StreamTrain(BlockSource& source, const StreamOptions& options,
                 BuildResult* result, SketchSidecar* sidecar,
                 std::string* error);

/// Registry adapter ("cmp-stream"): trains over an in-memory Dataset by
/// wrapping it in a zero-copy DatasetBlockSource. The sidecar of the
/// most recent Build is kept for callers that want to persist it.
class StreamBuilder : public TreeBuilder {
 public:
  explicit StreamBuilder(StreamOptions options)
      : options_(std::move(options)) {}

  BuildResult Build(const Dataset& train) override;
  std::string name() const override { return "CMP-stream"; }

  const SketchSidecar& sidecar() const { return sidecar_; }

 private:
  StreamOptions options_;
  SketchSidecar sidecar_;
};

}  // namespace cmp

#endif  // CMP_STREAM_STREAM_TRAIN_H_
