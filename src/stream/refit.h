#ifndef CMP_STREAM_REFIT_H_
#define CMP_STREAM_REFIT_H_

#include <string>

#include "io/block_source.h"
#include "io/sketch_sidecar.h"
#include "stream/grower.h"
#include "tree/builder.h"

namespace cmp {

/// Knobs of incremental refit (`cmptool refit`).
struct RefitOptions {
  /// Base/stream knobs. `intervals` and `sketch_capacity` are taken
  /// from the sidecar (the model's training configuration), not from
  /// here.
  StreamOptions stream;
  /// A leaf is regrown when the total-variation distance between its
  /// recorded class distribution and the distribution of the new
  /// records routed to it exceeds this (0.5 * L1 of the normalized
  /// distributions, in [0, 1]). A Hoeffding sampling slack
  /// sqrt(ln(1/0.05) / 2n) is added on top, so leaves with only a
  /// handful of new records are not regrown off statistical noise.
  double drift_threshold = 0.15;
};

/// Counters of one refit run.
struct RefitStats {
  int64_t records = 0;
  /// Leaves that received at least one new record.
  int64_t leaves_touched = 0;
  /// Drifted leaves whose subtrees were regrown.
  int64_t leaves_regrown = 0;
};

/// Incrementally extends a streamed tree with new records, without the
/// original data and without touching pre-existing interior nodes:
///
///   1. One routing pass sends every new record to its leaf and
///      accumulates fresh per-leaf statistics (the same representation
///      the sidecar stores).
///   2. Leaves whose class distribution shifted past
///      `drift_threshold` are regrown: their sidecar state is merged
///      with the new statistics (so the first split sees the leaf's
///      full history) and the StreamGrower resumes level-wise training
///      beneath them over the new records. All other leaves absorb the
///      new records into their counts and sidecar sketches.
///   3. The sidecar is updated in place: regrown leaves are replaced by
///      the new subtree's leaf entries, absorbed leaves are merged, and
///      records_seen advances — so refit can be applied again.
///
/// New nodes are appended to the tree's flat node array; existing node
/// ids (and the serialized bytes of every pre-existing interior node)
/// are untouched, which is what keeps the sidecar's NodeId keys and any
/// external references to the tree valid.
///
/// Returns false with *error when the sidecar does not match the tree
/// or the stream's schema, or on a stream read failure.
bool RefitTree(DecisionTree* tree, SketchSidecar* sidecar,
               BlockSource& source, const RefitOptions& options,
               BuildStats* build_stats, RefitStats* refit_stats,
               std::string* error);

}  // namespace cmp

#endif  // CMP_STREAM_REFIT_H_
