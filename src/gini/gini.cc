#include "gini/gini.h"

#include "common/cpu_features.h"

namespace cmp {

double Gini(std::span<const int64_t> class_counts) {
  int64_t n = 0;
  for (int64_t c : class_counts) n += c;
  if (n == 0) return 0.0;
  double sum_sq = 0.0;
  for (int64_t c : class_counts) {
    const double p = static_cast<double>(c) / static_cast<double>(n);
    sum_sq += p * p;
  }
  return 1.0 - sum_sq;
}

double SplitGini(std::span<const int64_t> left_counts,
                 std::span<const int64_t> right_counts) {
  int64_t nl = 0;
  int64_t nr = 0;
  for (int64_t c : left_counts) nl += c;
  for (int64_t c : right_counts) nr += c;
  const int64_t n = nl + nr;
  if (n == 0) return 0.0;
  return (static_cast<double>(nl) / n) * Gini(left_counts) +
         (static_cast<double>(nr) / n) * Gini(right_counts);
}

double SplitGini3(std::span<const int64_t> a, std::span<const int64_t> b,
                  std::span<const int64_t> c) {
  int64_t na = 0;
  int64_t nb = 0;
  int64_t nc = 0;
  for (int64_t v : a) na += v;
  for (int64_t v : b) nb += v;
  for (int64_t v : c) nc += v;
  const int64_t n = na + nb + nc;
  if (n == 0) return 0.0;
  return (static_cast<double>(na) / n) * Gini(a) +
         (static_cast<double>(nb) / n) * Gini(b) +
         (static_cast<double>(nc) / n) * Gini(c);
}

double BoundaryGini(std::span<const int64_t> below,
                    std::span<const int64_t> totals) {
  std::vector<int64_t> above(totals.size());
  for (size_t i = 0; i < totals.size(); ++i) above[i] = totals[i] - below[i];
  return SplitGini(below, above);
}

namespace {

// Scalar tier: literally BoundaryGini per row, so the scan's reference
// semantics are the function the golden fixtures were built on — not a
// reimplementation that could drift by an IEEE op.
void ScanBoundaryGinisScalar(const int64_t* prefix, int num_boundaries,
                             int nc, const int64_t* totals, double* out) {
  const std::span<const int64_t> t(totals, static_cast<size_t>(nc));
  for (int b = 0; b < num_boundaries; ++b) {
    out[b] = BoundaryGini(
        std::span<const int64_t>(prefix + static_cast<size_t>(b) * nc,
                                 static_cast<size_t>(nc)),
        t);
  }
}

BoundaryGiniScanFn ScanFnFor(KernelIsa isa) {
  if (isa == KernelIsa::kAvx2) {
    if (BoundaryGiniScanFn fn = Avx2BoundaryGiniScanOrNull()) return fn;
    isa = KernelIsa::kSse2;
  }
  if (isa == KernelIsa::kSse2) {
    if (BoundaryGiniScanFn fn = Sse2BoundaryGiniScanOrNull()) return fn;
  }
  return ScanBoundaryGinisScalar;
}

}  // namespace

void ScanBoundaryGinis(const int64_t* prefix, int num_boundaries, int nc,
                       const int64_t* totals, double* out) {
  if (num_boundaries <= 0) return;
  ScanFnFor(ActiveKernelIsa())(prefix, num_boundaries, nc, totals, out);
}

}  // namespace cmp
