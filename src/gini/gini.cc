#include "gini/gini.h"

namespace cmp {

double Gini(std::span<const int64_t> class_counts) {
  int64_t n = 0;
  for (int64_t c : class_counts) n += c;
  if (n == 0) return 0.0;
  double sum_sq = 0.0;
  for (int64_t c : class_counts) {
    const double p = static_cast<double>(c) / static_cast<double>(n);
    sum_sq += p * p;
  }
  return 1.0 - sum_sq;
}

double SplitGini(std::span<const int64_t> left_counts,
                 std::span<const int64_t> right_counts) {
  int64_t nl = 0;
  int64_t nr = 0;
  for (int64_t c : left_counts) nl += c;
  for (int64_t c : right_counts) nr += c;
  const int64_t n = nl + nr;
  if (n == 0) return 0.0;
  return (static_cast<double>(nl) / n) * Gini(left_counts) +
         (static_cast<double>(nr) / n) * Gini(right_counts);
}

double SplitGini3(std::span<const int64_t> a, std::span<const int64_t> b,
                  std::span<const int64_t> c) {
  int64_t na = 0;
  int64_t nb = 0;
  int64_t nc = 0;
  for (int64_t v : a) na += v;
  for (int64_t v : b) nb += v;
  for (int64_t v : c) nc += v;
  const int64_t n = na + nb + nc;
  if (n == 0) return 0.0;
  return (static_cast<double>(na) / n) * Gini(a) +
         (static_cast<double>(nb) / n) * Gini(b) +
         (static_cast<double>(nc) / n) * Gini(c);
}

double BoundaryGini(std::span<const int64_t> below,
                    std::span<const int64_t> totals) {
  std::vector<int64_t> above(totals.size());
  for (size_t i = 0; i < totals.size(); ++i) above[i] = totals[i] - below[i];
  return SplitGini(below, above);
}

}  // namespace cmp
