#ifndef CMP_GINI_GINI_H_
#define CMP_GINI_GINI_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.h"

namespace cmp {

/// gini(S) = 1 - sum_j p_j^2 over the class counts of S (Equation 1).
/// Returns 0 for an empty set.
double Gini(std::span<const int64_t> class_counts);

/// gini^D(S, cond) = n1/n * gini(S1) + n2/n * gini(S2) (Equation 2) for a
/// binary partition described by per-class counts of both sides.
double SplitGini(std::span<const int64_t> left_counts,
                 std::span<const int64_t> right_counts);

/// Weighted gini of a three-way partition (used for linear splits, where
/// the cells crossed by the line form a third "on the line" bucket).
double SplitGini3(std::span<const int64_t> a, std::span<const int64_t> b,
                  std::span<const int64_t> c);

/// gini^D(S, a <= v) when `below` holds the per-class counts of records
/// with value <= v and `totals` the node's per-class counts (Equation 3).
double BoundaryGini(std::span<const int64_t> below,
                    std::span<const int64_t> totals);

/// The gini boundary scan: out[b] = BoundaryGini(row b of `prefix`,
/// totals) for b in [0, num_boundaries), where `prefix` is a row-major
/// num_boundaries x nc matrix of prefix-summed class counts (row b =
/// per-class counts at or below cut b).
///
/// Dispatches to a vectorized implementation (4 boundaries per AVX2
/// iteration, 2 per SSE2) selected by common/cpu_features.h. Every tier
/// is BIT-IDENTICAL to calling BoundaryGini per row: lanes map to
/// boundaries, the class loop stays sequential inside each lane, every
/// IEEE op (convert, div, mul, add, sub) is elementwise in the scalar
/// op order, and the tiers are compiled without FMA contraction — so
/// the same doubles fall out regardless of tier, which is what keeps
/// golden trees byte-identical under `--kernel auto`
/// (tests/test_kernel_dispatch.cc, tests/test_gini.cc).
void ScanBoundaryGinis(const int64_t* prefix, int num_boundaries, int nc,
                       const int64_t* totals, double* out);

// ---------------------------------------------------------------------
// Internal dispatch surface of ScanBoundaryGinis, exposed so the
// differential tests can drive one specific tier directly. The OrNull
// accessors return null when the build lacks the ISA (non-x86 target or
// missing compiler flag); runtime support is checked by the dispatcher.

using BoundaryGiniScanFn = void (*)(const int64_t* prefix,
                                    int num_boundaries, int nc,
                                    const int64_t* totals, double* out);

BoundaryGiniScanFn Sse2BoundaryGiniScanOrNull();
BoundaryGiniScanFn Avx2BoundaryGiniScanOrNull();

}  // namespace cmp

#endif  // CMP_GINI_GINI_H_
