#ifndef CMP_GINI_GINI_H_
#define CMP_GINI_GINI_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.h"

namespace cmp {

/// gini(S) = 1 - sum_j p_j^2 over the class counts of S (Equation 1).
/// Returns 0 for an empty set.
double Gini(std::span<const int64_t> class_counts);

/// gini^D(S, cond) = n1/n * gini(S1) + n2/n * gini(S2) (Equation 2) for a
/// binary partition described by per-class counts of both sides.
double SplitGini(std::span<const int64_t> left_counts,
                 std::span<const int64_t> right_counts);

/// Weighted gini of a three-way partition (used for linear splits, where
/// the cells crossed by the line form a third "on the line" bucket).
double SplitGini3(std::span<const int64_t> a, std::span<const int64_t> b,
                  std::span<const int64_t> c);

/// gini^D(S, a <= v) when `below` holds the per-class counts of records
/// with value <= v and `totals` the node's per-class counts (Equation 3).
double BoundaryGini(std::span<const int64_t> below,
                    std::span<const int64_t> totals);

}  // namespace cmp

#endif  // CMP_GINI_GINI_H_
