// AVX2 tier of the gini boundary scan (see gini.h). Four boundaries per
// iteration, one __m256d lane each; the class loop stays sequential
// inside the lanes so every lane executes exactly the scalar
// BoundaryGini op sequence (convert, div, mul, add, sub — elementwise,
// same order). Compiled with -mavx2 ONLY — never -mfma — so GCC cannot
// contract mul+add into an FMA and perturb the low bits. Together those
// two properties make this tier bit-identical to the scalar tier, which
// the byte-identical-trees contract depends on.
//
// The 0/0 = NaN a one-sided boundary produces is masked to the scalar's
// 0.0 (Gini of an empty set) with cmp+andnot before the weighting.

#include "gini/gini.h"

#if defined(__AVX2__)

#include <immintrin.h>

#include <cstddef>

namespace cmp {

namespace {

// Lane k <- row (b + k), class c of the converted prefix matrix.
inline __m256d Lanes4(const double* p0, int c, int nc) {
  return _mm256_set_pd(p0[3 * nc + c], p0[2 * nc + c], p0[nc + c], p0[c]);
}

void ScanAvx2(const int64_t* prefix, int num_boundaries, int nc,
              const int64_t* totals, double* out) {
  // Convert the integer counts to doubles up front: every count is far
  // below 2^53, so the conversions — and any sums of converted counts —
  // are exact, and the arithmetic below sees the very values the scalar
  // path's int64 -> double casts produce. (There is no 4 x i64 -> 4 x
  // f64 convert below AVX-512 anyway.)
  const size_t cells = static_cast<size_t>(num_boundaries) * nc;
  std::vector<double> dp(cells);
  for (size_t i = 0; i < cells; ++i) dp[i] = static_cast<double>(prefix[i]);
  std::vector<double> dt(static_cast<size_t>(nc));
  int64_t n = 0;
  for (int c = 0; c < nc; ++c) {
    n += totals[c];
    dt[c] = static_cast<double>(totals[c]);
  }
  if (n == 0) {  // SplitGini of an empty node is 0.
    for (int b = 0; b < num_boundaries; ++b) out[b] = 0.0;
    return;
  }
  const __m256d vn = _mm256_set1_pd(static_cast<double>(n));
  const __m256d vone = _mm256_set1_pd(1.0);
  const __m256d vzero = _mm256_setzero_pd();
  int b = 0;
  for (; b + 4 <= num_boundaries; b += 4) {
    const double* p0 = dp.data() + static_cast<size_t>(b) * nc;
    __m256d vnl = vzero;
    for (int c = 0; c < nc; ++c) {
      vnl = _mm256_add_pd(vnl, Lanes4(p0, c, nc));
    }
    const __m256d vnr = _mm256_sub_pd(vn, vnl);
    // Per-lane Gini of both sides, classes in the scalar order. An empty
    // side divides 0/0; its NaN is masked to the scalar's 0.0 below.
    __m256d sl = vzero;
    __m256d sr = vzero;
    for (int c = 0; c < nc; ++c) {
      const __m256d x = Lanes4(p0, c, nc);
      const __m256d r = _mm256_sub_pd(_mm256_set1_pd(dt[c]), x);
      const __m256d pl = _mm256_div_pd(x, vnl);
      const __m256d pr = _mm256_div_pd(r, vnr);
      sl = _mm256_add_pd(sl, _mm256_mul_pd(pl, pl));
      sr = _mm256_add_pd(sr, _mm256_mul_pd(pr, pr));
    }
    __m256d gl = _mm256_sub_pd(vone, sl);
    __m256d gr = _mm256_sub_pd(vone, sr);
    gl = _mm256_andnot_pd(_mm256_cmp_pd(vnl, vzero, _CMP_EQ_OQ), gl);
    gr = _mm256_andnot_pd(_mm256_cmp_pd(vnr, vzero, _CMP_EQ_OQ), gr);
    const __m256d g =
        _mm256_add_pd(_mm256_mul_pd(_mm256_div_pd(vnl, vn), gl),
                      _mm256_mul_pd(_mm256_div_pd(vnr, vn), gr));
    _mm256_storeu_pd(out + b, g);
  }
  // Tail boundaries through the reference path.
  const std::span<const int64_t> t(totals, static_cast<size_t>(nc));
  for (; b < num_boundaries; ++b) {
    out[b] = BoundaryGini(
        std::span<const int64_t>(prefix + static_cast<size_t>(b) * nc,
                                 static_cast<size_t>(nc)),
        t);
  }
}

}  // namespace

BoundaryGiniScanFn Avx2BoundaryGiniScanOrNull() { return ScanAvx2; }

}  // namespace cmp

#else  // !defined(__AVX2__)

namespace cmp {

BoundaryGiniScanFn Avx2BoundaryGiniScanOrNull() { return nullptr; }

}  // namespace cmp

#endif  // defined(__AVX2__)
