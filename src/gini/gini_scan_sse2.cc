// SSE2 tier of the gini boundary scan (see gini.h): the AVX2 tier's
// structure at two boundaries per iteration. SSE2 is the x86-64
// baseline, so no special compile flags are needed; the same
// bit-identity argument applies (sequential class loop per lane, scalar
// op order, no FMA contraction, 0/0 NaN of one-sided boundaries masked
// to the scalar's 0.0).

#include "gini/gini.h"

#if defined(__SSE2__)

#include <emmintrin.h>

#include <cstddef>

namespace cmp {

namespace {

// Lane k <- row (b + k), class c of the converted prefix matrix.
inline __m128d Lanes2(const double* p0, int c, int nc) {
  return _mm_set_pd(p0[nc + c], p0[c]);
}

void ScanSse2(const int64_t* prefix, int num_boundaries, int nc,
              const int64_t* totals, double* out) {
  // Exact up-front int64 -> double conversion; see gini_scan_avx2.cc.
  const size_t cells = static_cast<size_t>(num_boundaries) * nc;
  std::vector<double> dp(cells);
  for (size_t i = 0; i < cells; ++i) dp[i] = static_cast<double>(prefix[i]);
  std::vector<double> dt(static_cast<size_t>(nc));
  int64_t n = 0;
  for (int c = 0; c < nc; ++c) {
    n += totals[c];
    dt[c] = static_cast<double>(totals[c]);
  }
  if (n == 0) {  // SplitGini of an empty node is 0.
    for (int b = 0; b < num_boundaries; ++b) out[b] = 0.0;
    return;
  }
  const __m128d vn = _mm_set1_pd(static_cast<double>(n));
  const __m128d vone = _mm_set1_pd(1.0);
  const __m128d vzero = _mm_setzero_pd();
  int b = 0;
  for (; b + 2 <= num_boundaries; b += 2) {
    const double* p0 = dp.data() + static_cast<size_t>(b) * nc;
    __m128d vnl = vzero;
    for (int c = 0; c < nc; ++c) {
      vnl = _mm_add_pd(vnl, Lanes2(p0, c, nc));
    }
    const __m128d vnr = _mm_sub_pd(vn, vnl);
    __m128d sl = vzero;
    __m128d sr = vzero;
    for (int c = 0; c < nc; ++c) {
      const __m128d x = Lanes2(p0, c, nc);
      const __m128d r = _mm_sub_pd(_mm_set1_pd(dt[c]), x);
      const __m128d pl = _mm_div_pd(x, vnl);
      const __m128d pr = _mm_div_pd(r, vnr);
      sl = _mm_add_pd(sl, _mm_mul_pd(pl, pl));
      sr = _mm_add_pd(sr, _mm_mul_pd(pr, pr));
    }
    __m128d gl = _mm_sub_pd(vone, sl);
    __m128d gr = _mm_sub_pd(vone, sr);
    gl = _mm_andnot_pd(_mm_cmpeq_pd(vnl, vzero), gl);
    gr = _mm_andnot_pd(_mm_cmpeq_pd(vnr, vzero), gr);
    const __m128d g = _mm_add_pd(_mm_mul_pd(_mm_div_pd(vnl, vn), gl),
                                 _mm_mul_pd(_mm_div_pd(vnr, vn), gr));
    _mm_storeu_pd(out + b, g);
  }
  const std::span<const int64_t> t(totals, static_cast<size_t>(nc));
  for (; b < num_boundaries; ++b) {
    out[b] = BoundaryGini(
        std::span<const int64_t>(prefix + static_cast<size_t>(b) * nc,
                                 static_cast<size_t>(nc)),
        t);
  }
}

}  // namespace

BoundaryGiniScanFn Sse2BoundaryGiniScanOrNull() { return ScanSse2; }

}  // namespace cmp

#else  // !defined(__SSE2__)

namespace cmp {

BoundaryGiniScanFn Sse2BoundaryGiniScanOrNull() { return nullptr; }

}  // namespace cmp

#endif  // defined(__SSE2__)
