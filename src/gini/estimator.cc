#include "gini/estimator.h"

#include <algorithm>
#include <cassert>
#include <limits>

#include "gini/gini.h"

namespace cmp {

namespace {

constexpr double kEps = 1e-12;

// One hill-climbing walk across an interval. `start` is the per-class
// below-count vector at the starting boundary; `chunk` the per-class
// record counts inside the interval, consumed whole per step (the paper's
// observation that only `c` evaluation points are needed); `sign` is +1
// for a left-to-right walk and -1 for right-to-left. Returns the minimum
// gini^D seen at the intermediate evaluation points.
double HillClimb(std::span<const int64_t> start,
                 std::span<const int64_t> chunk,
                 std::span<const int64_t> totals, int sign) {
  const int nc = static_cast<int>(totals.size());
  std::vector<int64_t> cur(start.begin(), start.end());
  std::vector<int64_t> remaining(chunk.begin(), chunk.end());
  double best = std::numeric_limits<double>::infinity();
  for (int step = 0; step < nc; ++step) {
    // Pick the class whose consumption descends the gini curve fastest:
    // moving right adds records (choose the most negative gradient);
    // moving left removes records (choose the most positive gradient).
    int pick = -1;
    double pick_grad = 0.0;
    for (int c = 0; c < nc; ++c) {
      if (remaining[c] == 0) continue;
      const double g = GiniGradient(cur, totals, c);
      if (pick < 0 || (sign > 0 ? g < pick_grad : g > pick_grad)) {
        pick = c;
        pick_grad = g;
      }
    }
    if (pick < 0) break;
    cur[pick] += sign * remaining[pick];
    remaining[pick] = 0;
    best = std::min(best, BoundaryGini(cur, totals));
  }
  return best;
}

}  // namespace

double GiniGradient(std::span<const int64_t> below,
                    std::span<const int64_t> totals, int cls) {
  // d/dx_i of Equation 3, evaluated analytically (matches the paper's
  // Equation 4 up to algebraic rearrangement).
  int64_t nl = 0;
  int64_t n = 0;
  for (int64_t v : below) nl += v;
  for (int64_t v : totals) n += v;
  const int64_t nr = n - nl;
  if (n == 0) return 0.0;
  // Degenerate boundaries: one-sided partitions have gini^D equal to
  // gini(S); use a zero gradient (the walks never start outside (0, n)).
  if (nl == 0 || nr == 0) return 0.0;
  double sum_x2 = 0.0;
  double sum_r2 = 0.0;
  for (size_t i = 0; i < below.size(); ++i) {
    const double x = static_cast<double>(below[i]);
    const double r = static_cast<double>(totals[i] - below[i]);
    sum_x2 += x * x;
    sum_r2 += r * r;
  }
  const double x_i = static_cast<double>(below[cls]);
  const double r_i = static_cast<double>(totals[cls] - below[cls]);
  const double dnl = static_cast<double>(nl);
  const double dnr = static_cast<double>(nr);
  const double dn = static_cast<double>(n);
  // gini^D = nl/n + nr/n - (1/n) * (sum_x2/nl + sum_r2/nr)
  //        = 1 - (1/n) * (sum_x2/nl + sum_r2/nr).
  // d/dx_i = -(1/n) * [ (2*x_i*nl - sum_x2)/nl^2 + (-2*r_i*nr + sum_r2)/nr^2 ]
  const double d_left = (2.0 * x_i * dnl - sum_x2) / (dnl * dnl);
  const double d_right = (-2.0 * r_i * dnr + sum_r2) / (dnr * dnr);
  return -(d_left + d_right) / dn;
}

double EstimateIntervalGini(std::span<const int64_t> below_left,
                            std::span<const int64_t> interval_counts,
                            std::span<const int64_t> totals) {
  std::vector<int64_t> below_right(below_left.size());
  for (size_t i = 0; i < below_left.size(); ++i) {
    below_right[i] = below_left[i] + interval_counts[i];
  }
  double est = std::min(BoundaryGini(below_left, totals),
                        BoundaryGini(below_right, totals));
  int64_t interval_total = 0;
  for (int64_t v : interval_counts) interval_total += v;
  if (interval_total == 0) return est;
  est = std::min(est, HillClimb(below_left, interval_counts, totals, +1));
  est = std::min(est, HillClimb(below_right, interval_counts, totals, -1));
  return est;
}

AttrAnalysis AnalyzeAttribute(const Histogram1D& hist) {
  AttrAnalysis out;
  const int q = hist.num_intervals();
  const int nc = hist.num_classes();
  const std::vector<int64_t> totals = hist.ClassTotals();

  out.interval_est.resize(q, 1.0);

  // Flat (q + 1) x nc prefix matrix: row i holds the per-class
  // below-counts at the LEFT edge of interval i (row 0 is zero, row q the
  // totals). One allocation instead of the per-interval vector-of-vectors
  // this loop used to build, and rows 1..q-1 are exactly the row-major
  // boundary matrix the vectorized scan consumes (boundary after interval
  // i = row i + 1).
  std::vector<int64_t> prefix(static_cast<size_t>(q + 1) * nc, 0);
  for (int i = 0; i < q; ++i) {
    const int64_t* r = hist.row(i);
    const int64_t* cur = prefix.data() + static_cast<size_t>(i) * nc;
    int64_t* next = prefix.data() + static_cast<size_t>(i + 1) * nc;
    for (int c = 0; c < nc; ++c) next[c] = cur[c] + r[c];
  }

  const int nb = q - 1;
  if (nb > 0) {
    out.boundary_gini.resize(nb);
    ScanBoundaryGinis(prefix.data() + nc, nb, nc, totals.data(),
                      out.boundary_gini.data());
    // First-strictly-less argmin, in boundary order (matches the running
    // scalar loop this replaced).
    for (int b = 0; b < nb; ++b) {
      if (out.boundary_gini[b] < out.gini_min) {
        out.gini_min = out.boundary_gini[b];
        out.best_boundary = b;
      }
    }
  }
  if (q <= 1) {
    out.gini_min = Gini(totals);
    out.est_min = out.gini_min;
    out.interval_est.assign(q, out.gini_min);
    return out;
  }

  out.est_min = std::numeric_limits<double>::infinity();
  std::vector<int64_t> interval_counts(nc);
  for (int i = 0; i < q; ++i) {
    for (int c = 0; c < nc; ++c) interval_counts[c] = hist.count(i, c);
    out.interval_est[i] = EstimateIntervalGini(
        std::span<const int64_t>(prefix.data() + static_cast<size_t>(i) * nc,
                                 static_cast<size_t>(nc)),
        interval_counts, totals);
    out.est_min = std::min(out.est_min, out.interval_est[i]);
  }
  return out;
}

std::vector<int> SelectAliveIntervals(const AttrAnalysis& analysis,
                                      int max_alive) {
  std::vector<int> alive;
  const int q = static_cast<int>(analysis.interval_est.size());
  for (int i = 0; i < q; ++i) {
    if (analysis.interval_est[i] < analysis.gini_min - kEps) {
      alive.push_back(i);
    }
  }
  if (static_cast<int>(alive.size()) > max_alive) {
    std::partial_sort(alive.begin(), alive.begin() + max_alive, alive.end(),
                      [&](int a, int b) {
                        return analysis.interval_est[a] <
                               analysis.interval_est[b];
                      });
    alive.resize(max_alive);
    std::sort(alive.begin(), alive.end());
  }
  return alive;
}

}  // namespace cmp
