#ifndef CMP_GINI_CATEGORICAL_H_
#define CMP_GINI_CATEGORICAL_H_

#include <cstdint>
#include <vector>

#include "hist/histogram1d.h"

namespace cmp {

/// Best binary subset split of a categorical attribute.
struct CategoricalSplit {
  /// left_subset[v] != 0 routes value v to the left child.
  std::vector<uint8_t> left_subset;
  double gini = 1.0;
  bool valid = false;
};

/// Finds the subset S of attribute values minimizing gini^D(node, a in S)
/// from the per-value class histogram (`hist` has one row per attribute
/// value). Exhaustive enumeration when the cardinality is at most
/// `exhaustive_limit`; greedy hill-climbing (SPRINT's approach for large
/// alphabets) otherwise. A split where either side is empty is invalid.
CategoricalSplit BestCategoricalSplit(const Histogram1D& hist,
                                      int exhaustive_limit = 12);

}  // namespace cmp

#endif  // CMP_GINI_CATEGORICAL_H_
