#include "gini/categorical.h"

#include <algorithm>
#include <limits>

#include "gini/gini.h"

namespace cmp {

namespace {

// Evaluates gini^D for the subset encoded in `mask` (bit v set => value v
// goes left).
double SubsetGini(const Histogram1D& hist, uint64_t mask,
                  const std::vector<int64_t>& totals) {
  const int nc = hist.num_classes();
  std::vector<int64_t> left(nc, 0);
  for (int v = 0; v < hist.num_intervals(); ++v) {
    if ((mask >> v) & 1u) {
      const int64_t* r = hist.row(v);
      for (int c = 0; c < nc; ++c) left[c] += r[c];
    }
  }
  std::vector<int64_t> right(nc);
  for (int c = 0; c < nc; ++c) right[c] = totals[c] - left[c];
  return SplitGini(left, right);
}

}  // namespace

CategoricalSplit BestCategoricalSplit(const Histogram1D& hist,
                                      int exhaustive_limit) {
  CategoricalSplit out;
  const int card = hist.num_intervals();
  if (card < 2) return out;
  const std::vector<int64_t> totals = hist.ClassTotals();
  int64_t n = 0;
  for (int64_t t : totals) n += t;
  if (n == 0) return out;

  auto empty_side = [&](uint64_t mask) {
    int64_t left_n = 0;
    for (int v = 0; v < card; ++v) {
      if ((mask >> v) & 1u) left_n += hist.IntervalTotal(v);
    }
    return left_n == 0 || left_n == n;
  };

  uint64_t best_mask = 0;
  double best_gini = std::numeric_limits<double>::infinity();

  if (card <= exhaustive_limit && card < 63) {
    // Enumerate half of the subsets (complement symmetric); skip empty /
    // full splits.
    const uint64_t limit = 1ull << (card - 1);
    for (uint64_t mask = 1; mask < limit; ++mask) {
      if (empty_side(mask)) continue;
      const double g = SubsetGini(hist, mask, totals);
      if (g < best_gini) {
        best_gini = g;
        best_mask = mask;
      }
    }
  } else {
    // Greedy hill-climbing: start from the single best value, then keep
    // adding the value that lowers gini most until no improvement.
    uint64_t mask = 0;
    double cur = std::numeric_limits<double>::infinity();
    bool improved = true;
    while (improved) {
      improved = false;
      uint64_t next_mask = mask;
      double next_gini = cur;
      for (int v = 0; v < card && v < 63; ++v) {
        if ((mask >> v) & 1u) continue;
        const uint64_t cand = mask | (1ull << v);
        if (empty_side(cand)) continue;
        const double g = SubsetGini(hist, cand, totals);
        if (g < next_gini) {
          next_gini = g;
          next_mask = cand;
        }
      }
      if (next_mask != mask) {
        mask = next_mask;
        cur = next_gini;
        improved = true;
      }
    }
    best_mask = mask;
    best_gini = cur;
  }

  if (best_mask == 0 ||
      best_gini == std::numeric_limits<double>::infinity()) {
    return out;
  }
  out.left_subset.assign(card, 0);
  for (int v = 0; v < card && v < 63; ++v) {
    out.left_subset[v] = static_cast<uint8_t>((best_mask >> v) & 1u);
  }
  out.gini = best_gini;
  out.valid = true;
  return out;
}

}  // namespace cmp
