#ifndef CMP_GINI_ESTIMATOR_H_
#define CMP_GINI_ESTIMATOR_H_

#include <cstdint>
#include <span>
#include <vector>

#include "hist/histogram1d.h"

namespace cmp {

/// Analysis of one discretized attribute at one tree node: the exact gini
/// at every interval boundary, the gradient-based lower-bound estimate
/// for every interval, and the resulting alive intervals (Section 2.1 of
/// the paper, following CLOUDS' estimation heuristic).
struct AttrAnalysis {
  /// gini^D(S, a <= b_i) for each cut b_i; size = num_intervals - 1.
  std::vector<double> boundary_gini;
  /// Estimated lower bound of the gini inside each interval; size =
  /// num_intervals. Intervals that cannot contain a split better than the
  /// boundary minimum have est >= gini_min.
  std::vector<double> interval_est;
  /// Minimum boundary gini and the boundary (cut index) achieving it.
  double gini_min = 1.0;
  int best_boundary = -1;
  /// Minimum interval estimate over all intervals.
  double est_min = 1.0;
};

/// Computes boundary ginis and per-interval lower-bound estimates for one
/// attribute's class histogram. `hist` has one row per interval.
AttrAnalysis AnalyzeAttribute(const Histogram1D& hist);

/// Gradient-based lower bound for the gini index inside one interval
/// whose left boundary has per-class "below" counts `below_left` and
/// which contains `interval_counts` records per class, out of a node with
/// per-class totals `totals`. Implements the hill-climbing walk of the
/// paper (Equations 3-5): evaluated left-to-right and right-to-left, the
/// result is the minimum of both walks and of the two boundary ginis.
double EstimateIntervalGini(std::span<const int64_t> below_left,
                            std::span<const int64_t> interval_counts,
                            std::span<const int64_t> totals);

/// Gradient of gini^D(S, a <= v) with respect to the below-count of class
/// `cls` (Equation 4). Exposed for unit tests that check it against a
/// numeric difference quotient.
double GiniGradient(std::span<const int64_t> below,
                    std::span<const int64_t> totals, int cls);

/// Selects the alive intervals of an analyzed attribute: the intervals
/// whose estimate is below `gini_min`, keeping at most `max_alive` of
/// them (the ones with the lowest estimates), per the CMP restrictions.
/// Returned indices are ascending.
std::vector<int> SelectAliveIntervals(const AttrAnalysis& analysis,
                                      int max_alive);

}  // namespace cmp

#endif  // CMP_GINI_ESTIMATOR_H_
