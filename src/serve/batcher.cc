#include "serve/batcher.h"

#include <algorithm>
#include <map>
#include <utility>

namespace cmp {

MicroBatcher::MicroBatcher(ThreadPool* pool, BatchPolicy policy,
                           ServeStats* stats)
    : pool_(pool), policy_(policy), stats_(stats) {
  flusher_ = std::thread([this] { FlusherLoop(); });
}

MicroBatcher::~MicroBatcher() { Stop(); }

std::future<RowReply> MicroBatcher::Submit(
    std::shared_ptr<const ServedModel> model, std::vector<double> numeric,
    std::vector<int32_t> categorical, bool want_probs) {
  Request req;
  req.model = std::move(model);
  req.numeric = std::move(numeric);
  req.categorical = std::move(categorical);
  req.want_probs = want_probs;
  req.enqueued = std::chrono::steady_clock::now();
  std::future<RowReply> fut = req.promise.get_future();

  std::vector<Request> full;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      RowReply reply;
      reply.error = "server shutting down";
      req.promise.set_value(std::move(reply));
      return fut;
    }
    pending_.push_back(std::move(req));
    if (static_cast<int>(pending_.size()) >= policy_.max_rows) {
      full.swap(pending_);
    } else if (pending_.size() == 1) {
      // First row of a fresh batch: arm the flusher's deadline.
      cv_.notify_one();
    }
  }
  if (!full.empty()) Dispatch(std::move(full), /*inline_run=*/false);
  return fut;
}

void MicroBatcher::FlusherLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    cv_.wait(lock, [this] { return stopping_ || !pending_.empty(); });
    if (stopping_) return;
    const auto deadline =
        pending_.front().enqueued + std::chrono::microseconds(policy_.max_delay_us);
    // Sleep until the oldest row's deadline; Submit may flush a full
    // batch out from under us in the meantime, which just re-arms us.
    cv_.wait_until(lock, deadline, [this, deadline] {
      return stopping_ || pending_.empty() ||
             pending_.front().enqueued +
                     std::chrono::microseconds(policy_.max_delay_us) !=
                 deadline;
    });
    if (stopping_) return;
    if (pending_.empty()) continue;
    if (std::chrono::steady_clock::now() < deadline &&
        static_cast<int>(pending_.size()) < policy_.max_rows) {
      continue;  // woken early (new first row); re-evaluate
    }
    std::vector<Request> batch;
    batch.swap(pending_);
    lock.unlock();
    Dispatch(std::move(batch), /*inline_run=*/false);
    lock.lock();
  }
}

void MicroBatcher::Dispatch(std::vector<Request> batch, bool inline_run) {
  if (batch.empty()) return;
  if (inline_run || pool_ == nullptr || pool_->num_threads() == 0) {
    RunBatch(&batch);
    return;
  }
  auto shared = std::make_shared<std::vector<Request>>(std::move(batch));
  pool_->Submit([this, shared] { RunBatch(shared.get()); });
}

void MicroBatcher::RunBatch(std::vector<Request>* batch) const {
  // Group row indices by model instance (pointer identity: two versions
  // of one name are distinct groups, which is exactly what a mid-queue
  // swap requires).
  std::map<const ServedModel*, std::vector<size_t>> groups;
  for (size_t i = 0; i < batch->size(); ++i) {
    groups[(*batch)[i].model.get()].push_back(i);
  }

  for (auto& [model, rows] : groups) {
    const int32_t na = model->schema().num_attrs();
    const int32_t nc = model->num_classes();
    const int64_t n = static_cast<int64_t>(rows.size());
    // One row-major -> SoA transpose per flushed batch: the group's rows
    // are scattered attr-major into column buffers as they are gathered
    // from the requests, and the predictor descends the columns directly
    // (vector kernel tiers included) with no further copies.
    std::vector<double> numeric(static_cast<size_t>(n) * na);
    std::vector<int32_t> categorical;
    bool any_cat = false;
    for (int64_t r = 0; r < n && !any_cat; ++r) {
      any_cat = !(*batch)[rows[r]].categorical.empty();
    }
    if (any_cat) categorical.assign(static_cast<size_t>(n) * na, -1);
    for (int64_t r = 0; r < n; ++r) {
      const Request& req = (*batch)[rows[r]];
      for (int32_t a = 0; a < na; ++a) {
        numeric[static_cast<size_t>(a) * n + r] = req.numeric[a];
      }
      if (!req.categorical.empty()) {
        for (int32_t a = 0; a < na; ++a) {
          categorical[static_cast<size_t>(a) * n + r] = req.categorical[a];
        }
      }
    }
    std::vector<const double*> numeric_cols(na);
    std::vector<const int32_t*> cat_cols(any_cat ? na : 0);
    for (int32_t a = 0; a < na; ++a) {
      numeric_cols[a] = numeric.data() + static_cast<size_t>(a) * n;
      if (any_cat) cat_cols[a] = categorical.data() + static_cast<size_t>(a) * n;
    }
    const BatchResult result = model->PredictColumns(
        numeric_cols.data(), any_cat ? cat_cols.data() : nullptr, n);
    const auto done = std::chrono::steady_clock::now();
    // Account before fulfilling: a client that pipelines `stats` behind
    // its own reply must see counters that already include its rows.
    if (stats_ != nullptr) {
      stats_->AddRows(static_cast<uint64_t>(n));
      stats_->AddBatch();
    }
    for (int64_t r = 0; r < n; ++r) {
      Request& req = (*batch)[rows[r]];
      RowReply reply;
      reply.ok = true;
      reply.label = result.labels[r];
      reply.model_version = model->version();
      if (req.want_probs && !result.probs.empty()) {
        reply.probs.assign(result.probs.begin() + r * nc,
                           result.probs.begin() + (r + 1) * nc);
      }
      if (stats_ != nullptr) {
        stats_->request_latency().Record(static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                done - req.enqueued)
                .count()));
      }
      req.promise.set_value(std::move(reply));
    }
  }
}

void MicroBatcher::Stop() {
  std::vector<Request> leftovers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    stopping_ = true;
    leftovers.swap(pending_);
  }
  cv_.notify_all();
  if (flusher_.joinable()) flusher_.join();
  // Score what was already accepted so no submitted future dangles.
  Dispatch(std::move(leftovers), /*inline_run=*/true);
}

}  // namespace cmp
