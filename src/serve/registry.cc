#include "serve/registry.h"

#include <utility>

namespace cmp {

namespace {

PredictOptions ServingOptions() {
  PredictOptions opts;
  opts.want_probs = true;
  // Micro-batches are small; a modest block keeps ParallelFor from
  // slicing them below useful granularity while still letting a large
  // `batch` request fan out across the pool.
  opts.block_size = 512;
  return opts;
}

}  // namespace

ServedModel::ServedModel(std::string name, uint64_t version,
                         std::string source_path, CompiledModel model,
                         ThreadPool* pool)
    : name_(std::move(name)),
      version_(version),
      source_path_(std::move(source_path)),
      model_(std::move(model)),
      pool_(pool) {
  if (model_.num_trees() == 1) {
    single_ = std::make_unique<BatchPredictor>(&model_.trees.front(),
                                               ServingOptions(), pool_);
  } else if (model_.num_trees() > 1) {
    multi_ = std::make_unique<EnsemblePredictor>(model_.trees,
                                                 VoteKind::kAverageProb);
  }
}

BatchResult ServedModel::PredictRows(const double* numeric,
                                     const int32_t* categorical,
                                     int64_t n) const {
  if (single_ != nullptr) {
    return single_->PredictRaw(numeric, categorical, n);
  }
  return multi_->PredictRaw(numeric, categorical, n, ServingOptions(), pool_);
}

BatchResult ServedModel::PredictColumns(
    const double* const* numeric_cols, const int32_t* const* categorical_cols,
    int64_t n) const {
  if (single_ != nullptr) {
    return single_->PredictColumns(numeric_cols, categorical_cols, n);
  }
  return multi_->PredictColumns(numeric_cols, categorical_cols, n,
                                ServingOptions(), pool_);
}

uint64_t ModelRegistry::Publish(const std::string& name, CompiledModel model,
                                const std::string& source_path,
                                std::string* error) {
  if (model.empty()) {
    if (error != nullptr) *error = "model has no trees";
    return 0;
  }
  // Build the new ServedModel (predictor construction included) outside
  // the lock; the critical section is just two map writes.
  std::unique_lock<std::mutex> lock(mu_);
  const uint64_t version = ++next_version_[name];
  lock.unlock();
  auto served = std::make_shared<const ServedModel>(
      name, version, source_path, std::move(model), pool_);
  lock.lock();
  models_[name] = std::move(served);
  return version;
}

uint64_t ModelRegistry::PublishFromFile(const std::string& name,
                                        const std::string& path,
                                        std::string* error) {
  CompiledModel model;
  if (!LoadCompiledModel(path, &model, error)) return 0;
  return Publish(name, std::move(model), path, error);
}

std::shared_ptr<const ServedModel> ModelRegistry::Get(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = models_.find(name);
  return it == models_.end() ? nullptr : it->second;
}

std::vector<std::shared_ptr<const ServedModel>> ModelRegistry::List() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::shared_ptr<const ServedModel>> out;
  out.reserve(models_.size());
  for (const auto& [name, served] : models_) out.push_back(served);
  return out;
}

int ModelRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(models_.size());
}

}  // namespace cmp
