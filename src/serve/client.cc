#include "serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace cmp {

ServeClient::~ServeClient() { Close(); }

void ServeClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  rbuf_.clear();
}

bool ServeClient::ConnectTcp(const std::string& host, int port,
                             std::string* error) {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    if (error != nullptr) *error = std::strerror(errno);
    return false;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    if (error != nullptr) *error = "bad address " + host;
    Close();
    return false;
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (error != nullptr) {
      *error = "connect " + host + ":" + std::to_string(port) + ": " +
               std::strerror(errno);
    }
    Close();
    return false;
  }
  return true;
}

bool ServeClient::ConnectUnix(const std::string& path, std::string* error) {
  Close();
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) {
    if (error != nullptr) *error = std::strerror(errno);
    return false;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    if (error != nullptr) *error = "unix socket path too long";
    Close();
    return false;
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (error != nullptr) {
      *error = "connect " + path + ": " + std::strerror(errno);
    }
    Close();
    return false;
  }
  return true;
}

bool ServeClient::Send(const std::string& line) {
  if (fd_ < 0) return false;
  const std::string framed = line + "\n";
  size_t off = 0;
  while (off < framed.size()) {
    const ssize_t n =
        ::send(fd_, framed.data() + off, framed.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

bool ServeClient::Recv(std::string* line) {
  if (fd_ < 0) return false;
  while (true) {
    const size_t nl = rbuf_.find('\n');
    if (nl != std::string::npos) {
      line->assign(rbuf_, 0, nl);
      if (!line->empty() && line->back() == '\r') line->pop_back();
      rbuf_.erase(0, nl + 1);
      return true;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    rbuf_.append(chunk, static_cast<size_t>(n));
  }
}

bool ServeClient::Rpc(const std::string& line, std::string* reply) {
  return Send(line) && Recv(reply);
}

bool ServeClient::Batch(const std::string& model,
                        const std::vector<std::string>& rows,
                        std::vector<std::string>* replies) {
  std::string request = "batch " + model + " " + std::to_string(rows.size());
  for (const std::string& row : rows) {
    request += "\n";
    request += row;
  }
  if (!Send(request)) return false;
  replies->clear();
  replies->reserve(rows.size());
  std::string line;
  for (size_t i = 0; i < rows.size(); ++i) {
    if (!Recv(&line)) return false;
    replies->push_back(line);
  }
  return Recv(&line) && line.rfind("done ", 0) == 0;
}

}  // namespace cmp
