#ifndef CMP_SERVE_CLIENT_H_
#define CMP_SERVE_CLIENT_H_

#include <string>
#include <vector>

namespace cmp {

/// Minimal blocking client for the cmpserve line protocol, used by the
/// tests, the serve benchmark, and anyone scripting against a local
/// daemon. One connection per instance; not thread-safe (use one client
/// per thread).
class ServeClient {
 public:
  ServeClient() = default;
  ~ServeClient();

  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;

  bool ConnectTcp(const std::string& host, int port, std::string* error);
  bool ConnectUnix(const std::string& path, std::string* error);
  bool connected() const { return fd_ >= 0; }
  void Close();

  /// Sends one request line (newline appended).
  bool Send(const std::string& line);
  /// Receives one reply line (newline stripped). False on EOF/error.
  bool Recv(std::string* line);
  /// Send + single-line reply.
  bool Rpc(const std::string& line, std::string* reply);

  /// Convenience: `batch` exchange — sends the verb plus `rows`, reads
  /// one reply per row and the trailing "done" line. Returns false on
  /// transport failure; per-row replies (including "err ..." lines) land
  /// in `replies`.
  bool Batch(const std::string& model, const std::vector<std::string>& rows,
             std::vector<std::string>* replies);

 private:
  int fd_ = -1;
  std::string rbuf_;
};

}  // namespace cmp

#endif  // CMP_SERVE_CLIENT_H_
