#include "serve/latency.h"

#include <bit>
#include <sstream>

#include "common/cpu_features.h"

namespace cmp {

// Bucket layout: values 0..3 map to buckets 0..3 exactly; for larger
// values the octave is floor(log2 v) and the top two bits below the
// leading bit pick one of four sub-buckets, giving bucket
// (octave-1)*4 + sub. The mapping is monotone and the last bucket
// (octave 63, sub 3) is index 251 < kBuckets.
int LatencyHistogram::BucketOf(uint64_t ns) {
  if (ns < 4) return static_cast<int>(ns);
  const int octave = std::bit_width(ns) - 1;  // >= 2
  const int sub = static_cast<int>((ns >> (octave - 2)) & 3);
  return (octave - 1) * kSubBuckets + sub;
}

namespace {

// Inclusive value range [lo, hi) covered by a bucket; inverse of
// BucketOf for quantile interpolation.
void BucketRange(int b, uint64_t* lo, uint64_t* hi) {
  if (b < 4) {
    *lo = static_cast<uint64_t>(b);
    *hi = *lo + 1;
    return;
  }
  const int octave = b / LatencyHistogram::kSubBuckets + 1;
  const int sub = b % LatencyHistogram::kSubBuckets;
  *lo = static_cast<uint64_t>(4 + sub) << (octave - 2);
  *hi = *lo + (uint64_t{1} << (octave - 2));
}

}  // namespace

void LatencyHistogram::Record(uint64_t ns) {
  counts_[BucketOf(ns)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_ns_.fetch_add(ns, std::memory_order_relaxed);
  uint64_t prev = max_ns_.load(std::memory_order_relaxed);
  while (prev < ns &&
         !max_ns_.compare_exchange_weak(prev, ns, std::memory_order_relaxed)) {
  }
}

LatencyHistogram::Snapshot LatencyHistogram::Snap() const {
  std::array<uint64_t, kBuckets> counts;
  uint64_t total = 0;
  for (int b = 0; b < kBuckets; ++b) {
    counts[b] = counts_[b].load(std::memory_order_relaxed);
    total += counts[b];
  }
  Snapshot snap;
  snap.count = total;
  if (total == 0) return snap;
  snap.mean_us = static_cast<double>(sum_ns_.load(std::memory_order_relaxed)) /
                 static_cast<double>(count_.load(std::memory_order_relaxed)) /
                 1e3;
  snap.max_us =
      static_cast<double>(max_ns_.load(std::memory_order_relaxed)) / 1e3;

  // Walk the cumulative distribution once for both quantiles,
  // interpolating linearly inside the hit bucket.
  auto quantile = [&](double q) {
    const double target = q * static_cast<double>(total);
    uint64_t cum = 0;
    for (int b = 0; b < kBuckets; ++b) {
      if (counts[b] == 0) continue;
      if (static_cast<double>(cum + counts[b]) >= target) {
        uint64_t lo = 0;
        uint64_t hi = 0;
        BucketRange(b, &lo, &hi);
        const double within =
            (target - static_cast<double>(cum)) /
            static_cast<double>(counts[b]);
        return (static_cast<double>(lo) +
                within * static_cast<double>(hi - lo)) /
               1e3;
      }
      cum += counts[b];
    }
    return snap.max_us;
  };
  snap.p50_us = quantile(0.50);
  snap.p99_us = quantile(0.99);
  return snap;
}

double ServeStats::UptimeSeconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_)
      .count();
}

std::string ServeStats::ToJson() const {
  const LatencyHistogram::Snapshot lat = request_latency_.Snap();
  const double up = UptimeSeconds();
  const uint64_t rows = rows_.load(std::memory_order_relaxed);
  const uint64_t batches = batches_.load(std::memory_order_relaxed);
  const int capacity = batch_capacity_.load(std::memory_order_relaxed);
  const double batch_fill =
      batches > 0 && capacity > 0
          ? static_cast<double>(rows) /
                (static_cast<double>(batches) * capacity)
          : 0.0;
  std::ostringstream os;
  os << "{\"uptime_s\":" << up << ",\"rows\":" << rows
     << ",\"requests\":" << requests_.load(std::memory_order_relaxed)
     << ",\"batches\":" << batches_.load(std::memory_order_relaxed)
     << ",\"swaps\":" << swaps_.load(std::memory_order_relaxed)
     << ",\"connections\":" << connections_.load(std::memory_order_relaxed)
     << ",\"protocol_errors\":"
     << protocol_errors_.load(std::memory_order_relaxed)
     << ",\"rows_per_sec\":"
     << (up > 0.0 ? static_cast<double>(rows) / up : 0.0)
     // The tier is read from the live dispatch state, not cached at
     // startup, so it always names what the next batch will run
     // (matching the train-side kernel_isa stats field).
     << ",\"kernel_isa\":\"" << KernelIsaName(ActiveKernelIsa()) << "\""
     << ",\"batch_fill\":" << batch_fill
     << ",\"latency_us\":{\"count\":" << lat.count
     << ",\"mean\":" << lat.mean_us << ",\"p50\":" << lat.p50_us
     << ",\"p99\":" << lat.p99_us << ",\"max\":" << lat.max_us << "}}";
  return os.str();
}

}  // namespace cmp
