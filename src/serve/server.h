#ifndef CMP_SERVE_SERVER_H_
#define CMP_SERVE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/net.h"
#include "common/thread_pool.h"
#include "serve/batcher.h"
#include "serve/latency.h"
#include "serve/registry.h"

namespace cmp {

/// Daemon configuration.
struct ServeOptions {
  /// TCP listen address; loopback by default — cmpserve is a local
  /// sidecar, not an internet-facing service.
  std::string host = "127.0.0.1";
  /// TCP port; 0 binds an ephemeral port (read it back via port()).
  int port = 0;
  /// When non-empty, listen on a UNIX-domain socket at this path
  /// instead of TCP.
  std::string unix_path;
  /// Scoring pool size; 0 means hardware concurrency.
  int num_threads = 0;
  BatchPolicy batch;
};

/// The cmpserve daemon: accept loop, line protocol, and the wiring
/// between connections, the micro-batcher, and the model registry.
///
/// Protocol — newline-terminated requests, newline-terminated replies:
///
///   predict <model> <v0,v1,...>   one CSV row -> "ok <label>"
///   predictp <model> <row>        -> "ok <label> <p0> <p1> ..."
///   batch <model> <n>             then n row lines -> n replies,
///                                 then "done <n>"
///   swap <model> <path.cmpb>      load + publish -> "ok <model> v<N>"
///   stats                         -> "ok <json>"
///   quit                          -> "ok bye", daemon shuts down
///
/// Any failure answers "err <message>" without closing the connection
/// (malformed rows inside `batch` fail row-by-row). Rows are dense CSV
/// in schema attribute order; categorical attributes take their integer
/// code.
///
/// Threading: one OS thread per connection (blocking reads), scoring on
/// the shared ThreadPool via the MicroBatcher, so concurrent clients'
/// single-row requests coalesce into shared batches. `swap` is safe at
/// any time — see ModelRegistry for the RCU argument.
class ServeDaemon {
 public:
  explicit ServeDaemon(ServeOptions opts);
  ~ServeDaemon();

  ServeDaemon(const ServeDaemon&) = delete;
  ServeDaemon& operator=(const ServeDaemon&) = delete;

  /// Binds, listens, and starts the accept thread. False + *error on
  /// any socket failure (the daemon is then inert; Shutdown is safe).
  bool Start(std::string* error);

  /// Actual TCP port after Start (resolves port 0).
  int port() const { return port_; }
  const ServeOptions& options() const { return opts_; }

  ModelRegistry& registry() { return registry_; }
  ServeStats& stats() { return stats_; }
  MicroBatcher& batcher() { return *batcher_; }
  ThreadPool& pool() { return pool_; }

  /// Flags the daemon for shutdown (e.g. from a `quit` handler or a
  /// signal-watching loop) without blocking; Wait()/WaitFor() callers
  /// wake up and run Shutdown.
  void RequestShutdown();

  /// Waits up to `timeout_ms` for a shutdown request; true when one
  /// arrived. A loop around this is the signal-safe main-thread idiom.
  bool WaitFor(int timeout_ms);

  /// Blocks until RequestShutdown, then tears the daemon down.
  void Wait();

  /// Stops accepting, unblocks and joins every connection, flushes the
  /// batcher. Idempotent; must not be called from a connection thread
  /// (it joins them) — connection handlers use RequestShutdown.
  void Shutdown();

 private:
  void AcceptLoop();
  void ServeConnection(int fd);
  /// Handles one request line; false means close the connection.
  /// `reader` is the connection's framing buffer — verbs that consume
  /// further lines (batch) must read through it, not the raw fd.
  bool HandleLine(int fd, LineReader* reader, const std::string& line);
  bool HandlePredict(int fd, const std::string& rest, bool want_probs);
  bool HandleBatch(int fd, LineReader* reader, const std::string& rest);
  void TrackConnection(int fd);
  void UntrackConnection(int fd);

  ServeOptions opts_;
  ServeStats stats_;
  ThreadPool pool_;
  ModelRegistry registry_;
  std::unique_ptr<MicroBatcher> batcher_;

  int listen_fd_ = -1;
  int port_ = 0;
  bool bound_unix_ = false;
  std::thread accept_thread_;

  std::mutex conn_mu_;
  std::vector<std::thread> conn_threads_;
  std::vector<int> conn_fds_;

  std::atomic<bool> stopping_{false};
  std::mutex shutdown_mu_;
  std::condition_variable shutdown_cv_;
  bool shutdown_requested_ = false;
  bool shut_down_ = false;
};

}  // namespace cmp

#endif  // CMP_SERVE_SERVER_H_
