#include "serve/server.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <utility>

#include "common/net.h"

namespace cmp {

namespace {

/// Parses one dense CSV row against `schema` into per-attribute slots.
bool ParseRow(const Schema& schema, const std::string& text,
              std::vector<double>* numeric, std::vector<int32_t>* categorical,
              std::string* error) {
  const int32_t na = schema.num_attrs();
  numeric->assign(static_cast<size_t>(na), 0.0);
  categorical->assign(static_cast<size_t>(na), -1);
  size_t pos = 0;
  for (int32_t a = 0; a < na; ++a) {
    const size_t comma = text.find(',', pos);
    const bool last = a == na - 1;
    if (!last && comma == std::string::npos) {
      *error = "expected " + std::to_string(na) + " fields";
      return false;
    }
    const std::string field = text.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    if (field.empty()) {
      *error = "empty field " + std::to_string(a);
      return false;
    }
    char* end = nullptr;
    if (schema.is_numeric(a)) {
      (*numeric)[a] = std::strtod(field.c_str(), &end);
    } else {
      (*categorical)[a] = static_cast<int32_t>(std::strtol(field.c_str(), &end, 10));
    }
    if (end == field.c_str() || *end != '\0') {
      *error = "bad value '" + field + "' for attribute " +
               schema.attr(a).name;
      return false;
    }
    if (last) {
      if (comma != std::string::npos) {
        *error = "expected " + std::to_string(na) + " fields";
        return false;
      }
      return true;
    }
    pos = comma + 1;
  }
  return na > 0;  // na == 0 is an unusable schema
}

std::string LabelName(const Schema& schema, ClassId c) {
  if (c == kInvalidClass) return "?";
  return c < schema.num_classes() ? schema.class_name(c)
                                  : "class" + std::to_string(c);
}

std::string ReplyLine(const Schema& schema, const RowReply& reply,
                      bool want_probs) {
  if (!reply.ok) return "err " + reply.error;
  std::ostringstream os;
  os << "ok " << LabelName(schema, reply.label);
  if (want_probs) {
    for (const float p : reply.probs) os << ' ' << p;
  }
  return os.str();
}

}  // namespace

ServeDaemon::ServeDaemon(ServeOptions opts)
    : opts_(std::move(opts)),
      pool_(opts_.num_threads),
      registry_(&pool_),
      batcher_(std::make_unique<MicroBatcher>(&pool_, opts_.batch, &stats_)) {
  stats_.SetBatchCapacity(opts_.batch.max_rows);
}

ServeDaemon::~ServeDaemon() { Shutdown(); }

bool ServeDaemon::Start(std::string* error) {
  if (!opts_.unix_path.empty()) {
    listen_fd_ = ListenUnix(opts_.unix_path, error);
    if (listen_fd_ < 0) return false;
    bound_unix_ = true;
  } else {
    listen_fd_ = ListenTcp(opts_.host, opts_.port, &port_, error);
    if (listen_fd_ < 0) return false;
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return true;
}

void ServeDaemon::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed by Shutdown
    }
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      return;
    }
    stats_.AddConnection();
    TrackConnection(fd);
    std::lock_guard<std::mutex> lock(conn_mu_);
    conn_threads_.emplace_back([this, fd] { ServeConnection(fd); });
  }
}

void ServeDaemon::TrackConnection(int fd) {
  std::lock_guard<std::mutex> lock(conn_mu_);
  conn_fds_.push_back(fd);
}

void ServeDaemon::UntrackConnection(int fd) {
  std::lock_guard<std::mutex> lock(conn_mu_);
  for (size_t i = 0; i < conn_fds_.size(); ++i) {
    if (conn_fds_[i] == fd) {
      conn_fds_.erase(conn_fds_.begin() + static_cast<ptrdiff_t>(i));
      break;
    }
  }
}

void ServeDaemon::ServeConnection(int fd) {
  LineReader reader(fd);
  std::string line;
  while (!stopping_.load(std::memory_order_acquire) && reader.ReadLine(&line)) {
    if (line.empty()) continue;
    if (!HandleLine(fd, &reader, line)) break;
  }
  UntrackConnection(fd);
  ::close(fd);
}

bool ServeDaemon::HandleLine(int fd, LineReader* reader,
                             const std::string& line) {
  const size_t sp = line.find(' ');
  const std::string verb = line.substr(0, sp);
  const std::string rest = sp == std::string::npos ? "" : line.substr(sp + 1);

  if (verb == "predict") return HandlePredict(fd, rest, /*want_probs=*/false);
  if (verb == "predictp") return HandlePredict(fd, rest, /*want_probs=*/true);
  if (verb == "batch") return HandleBatch(fd, reader, rest);
  if (verb == "stats") return SendLine(fd, "ok " + stats_.ToJson());
  if (verb == "swap") {
    const size_t sp2 = rest.find(' ');
    if (sp2 == std::string::npos) {
      stats_.AddProtocolError();
      return SendLine(fd, "err usage: swap <model> <path.cmpb>");
    }
    const std::string name = rest.substr(0, sp2);
    const std::string path = rest.substr(sp2 + 1);
    std::string error;
    const uint64_t version = registry_.PublishFromFile(name, path, &error);
    if (version == 0) return SendLine(fd, "err " + error);
    stats_.AddSwap();
    return SendLine(fd, "ok " + name + " v" + std::to_string(version));
  }
  if (verb == "quit") {
    SendLine(fd, "ok bye");
    RequestShutdown();
    return false;
  }
  stats_.AddProtocolError();
  return SendLine(fd, "err unknown verb '" + verb + "'");
}

bool ServeDaemon::HandlePredict(int fd, const std::string& rest,
                                bool want_probs) {
  const size_t sp = rest.find(' ');
  if (sp == std::string::npos) {
    stats_.AddProtocolError();
    return SendLine(fd, "err usage: predict <model> <csv-row>");
  }
  const std::string name = rest.substr(0, sp);
  const std::shared_ptr<const ServedModel> model = registry_.Get(name);
  if (model == nullptr) {
    stats_.AddProtocolError();
    return SendLine(fd, "err unknown model '" + name + "'");
  }
  std::vector<double> numeric;
  std::vector<int32_t> categorical;
  std::string error;
  if (!ParseRow(model->schema(), rest.substr(sp + 1), &numeric, &categorical,
                &error)) {
    stats_.AddProtocolError();
    return SendLine(fd, "err " + error);
  }
  stats_.AddRequests(1);
  const Schema& schema = model->schema();
  std::future<RowReply> fut = batcher_->Submit(
      std::move(model), std::move(numeric), std::move(categorical),
      want_probs);
  return SendLine(fd, ReplyLine(schema, fut.get(), want_probs));
}

bool ServeDaemon::HandleBatch(int fd, LineReader* reader,
                              const std::string& rest) {
  const size_t sp = rest.find(' ');
  const std::string name = rest.substr(0, sp);
  const long n = sp == std::string::npos
                     ? -1
                     : std::strtol(rest.c_str() + sp + 1, nullptr, 10);
  if (name.empty() || n < 0 || n > (1 << 20)) {
    stats_.AddProtocolError();
    return SendLine(fd, "err usage: batch <model> <num-rows>");
  }
  const std::shared_ptr<const ServedModel> model = registry_.Get(name);
  if (model == nullptr) {
    // The client has likely pipelined n row lines behind the verb;
    // consume them so they are not misread as requests, and keep the
    // reply shape (n row replies + done) invariant.
    stats_.AddProtocolError();
    std::string discard;
    for (long i = 0; i < n; ++i) {
      if (!reader->ReadLine(&discard)) return false;
      if (!SendLine(fd, "err unknown model '" + name + "'")) return false;
    }
    return SendLine(fd, "done 0");
  }
  const Schema& schema = model->schema();

  // Read and enqueue rows one by one — the batcher coalesces them (and
  // anything other connections submit meanwhile) into scoring batches
  // while we are still parsing later rows. The connection's reader is
  // shared so rows the client pipelined behind the verb line are not
  // stranded in its buffer.
  std::vector<std::future<RowReply>> futures;
  futures.reserve(static_cast<size_t>(n));
  std::vector<std::string> parse_errors(static_cast<size_t>(n));
  std::string row;
  for (long i = 0; i < n; ++i) {
    if (!reader->ReadLine(&row)) {
      SendLine(fd, "err short batch: got " + std::to_string(i) + " of " +
                       std::to_string(n) + " rows");
      return false;
    }
    std::vector<double> numeric;
    std::vector<int32_t> categorical;
    std::string error;
    if (!ParseRow(schema, row, &numeric, &categorical, &error)) {
      parse_errors[static_cast<size_t>(i)] = error;
      futures.emplace_back();  // placeholder, never waited on
      continue;
    }
    futures.push_back(batcher_->Submit(model, std::move(numeric),
                                       std::move(categorical),
                                       /*want_probs=*/false));
  }
  stats_.AddRequests(static_cast<uint64_t>(n));

  long ok_rows = 0;
  for (long i = 0; i < n; ++i) {
    std::string reply;
    if (!parse_errors[static_cast<size_t>(i)].empty()) {
      reply = "err " + parse_errors[static_cast<size_t>(i)];
    } else {
      reply = ReplyLine(schema, futures[static_cast<size_t>(i)].get(),
                        /*want_probs=*/false);
      ++ok_rows;
    }
    if (!SendLine(fd, reply)) return false;
  }
  return SendLine(fd, "done " + std::to_string(ok_rows));
}

void ServeDaemon::RequestShutdown() {
  {
    std::lock_guard<std::mutex> lock(shutdown_mu_);
    shutdown_requested_ = true;
  }
  shutdown_cv_.notify_all();
}

bool ServeDaemon::WaitFor(int timeout_ms) {
  std::unique_lock<std::mutex> lock(shutdown_mu_);
  return shutdown_cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                               [this] { return shutdown_requested_; });
}

void ServeDaemon::Wait() {
  {
    std::unique_lock<std::mutex> lock(shutdown_mu_);
    shutdown_cv_.wait(lock, [this] { return shutdown_requested_; });
  }
  Shutdown();
}

void ServeDaemon::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(shutdown_mu_);
    if (shut_down_) return;
    shut_down_ = true;
    shutdown_requested_ = true;
  }
  shutdown_cv_.notify_all();
  stopping_.store(true, std::memory_order_release);

  if (listen_fd_ >= 0) {
    // shutdown() unblocks a blocked accept(); close alone may not.
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  listen_fd_ = -1;

  // Unblock connection threads parked in recv, then join them.
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    threads.swap(conn_threads_);
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }

  batcher_->Stop();
  if (bound_unix_) ::unlink(opts_.unix_path.c_str());
}

}  // namespace cmp
