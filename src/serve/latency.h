#ifndef CMP_SERVE_LATENCY_H_
#define CMP_SERVE_LATENCY_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

namespace cmp {

/// A lock-free log-scale latency histogram.
///
/// Values (nanoseconds) land in 4 sub-buckets per power of two —
/// HDR-style — so quantile estimates carry at most ~12.5% relative
/// error across the full uint64 range with a fixed 256-counter
/// footprint and no allocation. Record() is two relaxed atomic adds
/// plus a CAS max update; many request threads hammer one histogram
/// with no shared cache line written twice per event beyond the
/// counters themselves.
///
/// Snapshots read the counters relaxed while writers keep recording, so
/// a snapshot is not a single instant — each counter is exact but the
/// set may straddle a few in-flight events. For monitoring percentiles
/// that is the right trade; nothing here is used for control decisions.
class LatencyHistogram {
 public:
  static constexpr int kSubBuckets = 4;
  static constexpr int kBuckets = 64 * kSubBuckets;

  void Record(uint64_t ns);

  struct Snapshot {
    uint64_t count = 0;
    double mean_us = 0.0;
    double p50_us = 0.0;
    double p99_us = 0.0;
    double max_us = 0.0;
  };
  Snapshot Snap() const;

  /// Bucket index for `ns`; exposed for tests.
  static int BucketOf(uint64_t ns);

 private:
  std::array<std::atomic<uint64_t>, kBuckets> counts_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_ns_{0};
  std::atomic<uint64_t> max_ns_{0};
};

/// Serving-wide counters: request latency plus throughput/traffic
/// totals, all relaxed atomics so the hot path never takes a lock to
/// account for itself. Rendered as one JSON object by the `stats`
/// admin verb.
class ServeStats {
 public:
  ServeStats() : start_(std::chrono::steady_clock::now()) {}

  LatencyHistogram& request_latency() { return request_latency_; }
  const LatencyHistogram& request_latency() const { return request_latency_; }

  void AddRows(uint64_t n) { rows_.fetch_add(n, std::memory_order_relaxed); }
  void AddRequests(uint64_t n) {
    requests_.fetch_add(n, std::memory_order_relaxed);
  }
  void AddBatch() { batches_.fetch_add(1, std::memory_order_relaxed); }
  void AddSwap() { swaps_.fetch_add(1, std::memory_order_relaxed); }
  void AddConnection() {
    connections_.fetch_add(1, std::memory_order_relaxed);
  }
  void AddProtocolError() {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
  }
  /// Configured micro-batch capacity (BatchPolicy::max_rows), the
  /// denominator of the stats JSON's `batch_fill` ratio. Set once by the
  /// daemon at startup.
  void SetBatchCapacity(int rows) {
    batch_capacity_.store(rows, std::memory_order_relaxed);
  }

  uint64_t rows() const { return rows_.load(std::memory_order_relaxed); }
  uint64_t requests() const {
    return requests_.load(std::memory_order_relaxed);
  }
  uint64_t batches() const { return batches_.load(std::memory_order_relaxed); }
  uint64_t swaps() const { return swaps_.load(std::memory_order_relaxed); }

  double UptimeSeconds() const;

  /// One-line JSON: totals, sustained rows/sec since start, the active
  /// inference kernel tier, mean batch fill (rows per batch over the
  /// configured capacity), and the request-latency percentiles.
  std::string ToJson() const;

 private:
  LatencyHistogram request_latency_;
  std::atomic<uint64_t> rows_{0};
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> swaps_{0};
  std::atomic<uint64_t> connections_{0};
  std::atomic<uint64_t> protocol_errors_{0};
  std::atomic<int> batch_capacity_{0};
  std::chrono::steady_clock::time_point start_;
};

}  // namespace cmp

#endif  // CMP_SERVE_LATENCY_H_
