#ifndef CMP_SERVE_REGISTRY_H_
#define CMP_SERVE_REGISTRY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "infer/batch_predictor.h"
#include "infer/ensemble.h"
#include "infer/model_io.h"

namespace cmp {

/// One published version of a named model: the compiled blob view plus
/// a predictor bound to it. Immutable after construction — scoring
/// threads touch it only through `const`, so a ServedModel can be
/// shared freely across batches with no locking.
///
/// Single-tree models score through the gang-descent BatchPredictor;
/// multi-tree blobs through an average-probability EnsemblePredictor.
/// Either way PredictRows hides the difference from the batcher.
class ServedModel {
 public:
  /// Builds a served instance over a compiled model (at least one
  /// tree). `pool` is borrowed for the predictor and must outlive the
  /// ServedModel.
  ServedModel(std::string name, uint64_t version, std::string source_path,
              CompiledModel model, ThreadPool* pool);

  const std::string& name() const { return name_; }
  uint64_t version() const { return version_; }
  const std::string& source_path() const { return source_path_; }
  const Schema& schema() const { return *model_.schema; }
  int num_trees() const { return model_.num_trees(); }
  int32_t num_classes() const { return model_.num_classes(); }

  /// Scores `n` raw dense rows (layout as in BatchPredictor::PredictRaw).
  /// Always fills probabilities so mixed want-probs batches need no
  /// re-grouping. Thread-safe.
  BatchResult PredictRows(const double* numeric, const int32_t* categorical,
                          int64_t n) const;

  /// Scores `n` rows already in column-major form (one pointer per
  /// schema attribute, see RowColumnsView). This is what the batcher
  /// feeds: it transposes each flushed micro-batch once, and the vector
  /// kernels descend the columns with no further copying. Thread-safe.
  BatchResult PredictColumns(const double* const* numeric_cols,
                             const int32_t* const* categorical_cols,
                             int64_t n) const;

 private:
  std::string name_;
  uint64_t version_;
  std::string source_path_;
  CompiledModel model_;
  ThreadPool* pool_;
  std::unique_ptr<BatchPredictor> single_;     // one tree
  std::unique_ptr<EnsemblePredictor> multi_;   // several trees
};

/// Named model versions behind shared_ptr RCU semantics.
///
/// Readers (the batcher, connection threads) call Get() and hold the
/// returned shared_ptr for the duration of one batch; Publish()
/// replaces the map entry under a short mutex and bumps the version.
/// A reader that resolved the pointer before a swap keeps scoring
/// against the old version — never a torn mix of old and new arrays —
/// and the old blob (including its mmap) is unmapped exactly when the
/// last in-flight batch drops its reference. No reader-side lock is
/// held while scoring; the mutex guards only the pointer-sized map
/// update, so a swap under full traffic stalls nobody.
class ModelRegistry {
 public:
  /// `pool` is borrowed for the predictors of published models and must
  /// outlive the registry.
  explicit ModelRegistry(ThreadPool* pool) : pool_(pool) {}

  /// Publishes `model` under `name`, replacing any current version.
  /// Returns the new version number (monotone per name, starting at 1),
  /// or 0 with *error set if the model is unusable.
  uint64_t Publish(const std::string& name, CompiledModel model,
                   const std::string& source_path, std::string* error);

  /// Loads a .cmpb file and publishes it. Validation happens before the
  /// swap: a corrupt file leaves the current version serving.
  uint64_t PublishFromFile(const std::string& name, const std::string& path,
                           std::string* error);

  /// Current version of a model, or null if the name is unknown. The
  /// caller's shared_ptr is the RCU read lock: hold it across the batch.
  std::shared_ptr<const ServedModel> Get(const std::string& name) const;

  /// Snapshot of all current versions, name-ordered.
  std::vector<std::shared_ptr<const ServedModel>> List() const;

  int size() const;

 private:
  ThreadPool* pool_;
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<const ServedModel>> models_;
  std::map<std::string, uint64_t> next_version_;
};

}  // namespace cmp

#endif  // CMP_SERVE_REGISTRY_H_
