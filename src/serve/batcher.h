#ifndef CMP_SERVE_BATCHER_H_
#define CMP_SERVE_BATCHER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "common/types.h"
#include "serve/latency.h"
#include "serve/registry.h"

namespace cmp {

/// Outcome of one served row.
struct RowReply {
  bool ok = false;
  std::string error;           // set when !ok
  ClassId label = kInvalidClass;
  std::vector<float> probs;    // per-class, filled when requested
  uint64_t model_version = 0;  // version that actually scored the row
};

/// When the batcher flushes pending rows into a scoring batch.
struct BatchPolicy {
  /// Flush as soon as this many rows are pending (dispatched inline
  /// from the submitting thread — no waiting on the flusher).
  int max_rows = 256;
  /// Flush when the oldest pending row has waited this long, so a lone
  /// request never stalls behind an unfilled batch.
  int max_delay_us = 1000;
};

/// Coalesces individually-submitted rows into scoring batches.
///
/// Submit() stamps the row with the model version resolved by the
/// caller and parks it; a batch flushes when it reaches
/// `policy.max_rows` or when the oldest row has waited
/// `policy.max_delay_us` (a dedicated flusher thread watches the
/// deadline). Flushed batches are grouped by model — one PredictRows
/// call per distinct model — and run as tasks on the shared ThreadPool,
/// where the predictor's own ParallelFor further splits large groups.
/// Each row's future is fulfilled with its label/probs and the version
/// that scored it; per-row queue+score latency is recorded into
/// `stats` at fulfillment time.
///
/// Because rows carry their own shared_ptr<const ServedModel>, a hot
/// swap mid-queue is torn-read-free by construction: rows submitted
/// before the swap score on the old version (kept alive by their
/// references), rows after it on the new one, and nothing in between.
class MicroBatcher {
 public:
  MicroBatcher(ThreadPool* pool, BatchPolicy policy, ServeStats* stats);
  ~MicroBatcher();

  /// Enqueues one row against `model` (non-null). `numeric` and
  /// `categorical` are dense per-attribute slots sized
  /// model->schema().num_attrs() (categorical may be empty for
  /// all-numeric schemas). The future resolves once the row's batch has
  /// been scored. `want_probs` asks for the per-class vector in the
  /// reply.
  std::future<RowReply> Submit(std::shared_ptr<const ServedModel> model,
                               std::vector<double> numeric,
                               std::vector<int32_t> categorical,
                               bool want_probs);

  /// Flushes anything pending and stops the flusher thread. Submissions
  /// after Stop() resolve immediately with an error reply. Idempotent;
  /// called by the destructor.
  void Stop();

  const BatchPolicy& policy() const { return policy_; }

 private:
  struct Request {
    std::shared_ptr<const ServedModel> model;
    std::vector<double> numeric;
    std::vector<int32_t> categorical;
    bool want_probs = false;
    std::promise<RowReply> promise;
    std::chrono::steady_clock::time_point enqueued;
  };

  void FlusherLoop();
  /// Hands a flushed batch to the pool (or runs it inline during Stop).
  void Dispatch(std::vector<Request> batch, bool inline_run);
  /// Groups by model, scores, fulfills promises, records latency.
  void RunBatch(std::vector<Request>* batch) const;

  ThreadPool* pool_;
  const BatchPolicy policy_;
  ServeStats* stats_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Request> pending_;
  bool stopping_ = false;
  std::thread flusher_;
};

}  // namespace cmp

#endif  // CMP_SERVE_BATCHER_H_
