#include "exact/exact.h"

#include <algorithm>
#include <limits>

#include "common/class_counts.h"
#include "common/timer.h"
#include "gini/categorical.h"
#include "gini/gini.h"
#include "hist/histogram1d.h"
#include "pruning/mdl.h"
#include "tree/observer.h"

namespace cmp {

ExactSplit FindBestSplitExact(const Dataset& ds,
                              const std::vector<RecordId>& rids,
                              ScanTracker* tracker, ThreadPool* pool) {
  const Schema& schema = ds.schema();
  const int nc = schema.num_classes();

  std::vector<int64_t> totals(nc, 0);
  for (RecordId r : rids) totals[ds.label(r)]++;

  // Per-attribute searches are independent; each fills its own slot, and
  // the winner is reduced serially in ascending attribute order below —
  // the same tie-breaking the single-threaded loop used, so the chosen
  // split does not depend on the thread count.
  std::vector<ExactSplit> per_attr(schema.num_attrs());
  auto search_attr = [&](AttrId a) {
    ExactSplit& best = per_attr[a];
    best.gini = std::numeric_limits<double>::infinity();
    if (schema.is_numeric(a)) {
      std::vector<std::pair<double, ClassId>> column;
      column.reserve(rids.size());
      for (RecordId r : rids) {
        column.emplace_back(ds.numeric(a, r), ds.label(r));
      }
      std::sort(column.begin(), column.end());
      std::vector<int64_t> below(nc, 0);
      for (size_t i = 0; i + 1 < column.size(); ++i) {
        below[column[i].second]++;
        if (column[i].first == column[i + 1].first) continue;
        const double g = BoundaryGini(below, totals);
        if (g < best.gini) {
          best.gini = g;
          best.split = Split::Numeric(a, column[i].first);
          best.valid = true;
        }
      }
    } else {
      const int card = schema.attr(a).cardinality;
      Histogram1D hist(card, nc);
      for (RecordId r : rids) {
        hist.Add(ds.categorical(a, r), ds.label(r));
      }
      const CategoricalSplit cs = BestCategoricalSplit(hist);
      if (cs.valid) {
        best.gini = cs.gini;
        best.split = Split::Categorical(a, cs.left_subset);
        best.valid = true;
      }
    }
  };
  if (pool != nullptr && pool->parallelism() > 1) {
    pool->ParallelFor(schema.num_attrs(), 1, [&](int64_t lo, int64_t hi) {
      for (int64_t a = lo; a < hi; ++a) search_attr(static_cast<AttrId>(a));
    });
  } else {
    for (AttrId a = 0; a < schema.num_attrs(); ++a) search_attr(a);
  }

  ExactSplit best;
  best.gini = std::numeric_limits<double>::infinity();
  for (AttrId a = 0; a < schema.num_attrs(); ++a) {
    if (tracker != nullptr && schema.is_numeric(a)) {
      tracker->ChargeSort(static_cast<int64_t>(rids.size()));
    }
    if (per_attr[a].valid && per_attr[a].gini < best.gini) best = per_attr[a];
  }
  if (!best.valid) best.gini = Gini(totals);
  return best;
}

namespace {

std::vector<int64_t> CountClasses(const Dataset& ds,
                                  const std::vector<RecordId>& rids) {
  std::vector<int64_t> counts(ds.num_classes(), 0);
  for (RecordId r : rids) counts[ds.label(r)]++;
  return counts;
}

}  // namespace

void BuildExactSubtree(const Dataset& ds, const std::vector<RecordId>& rids,
                       const BuilderOptions& options, DecisionTree* tree,
                       NodeId root_id, ScanTracker* tracker,
                       ThreadPool* pool) {
  TreeNode& root = tree->mutable_node(root_id);
  const std::vector<int64_t>& counts = root.class_counts;
  const int depth = root.depth;

  const bool stop =
      IsPure(counts) ||
      static_cast<int64_t>(rids.size()) < options.min_split_records ||
      depth >= options.max_depth ||
      (options.prune &&
       ShouldPruneBeforeExpand(counts, ds.schema().num_attrs()));
  if (!stop) {
    const ExactSplit best = FindBestSplitExact(ds, rids, tracker, pool);
    if (best.valid && best.gini < Gini(counts) - 1e-12) {
      std::vector<RecordId> left_rids;
      std::vector<RecordId> right_rids;
      for (RecordId r : rids) {
        (best.split.RoutesLeft(ds, r) ? left_rids : right_rids).push_back(r);
      }
      if (!left_rids.empty() && !right_rids.empty()) {
        TreeNode left;
        left.depth = depth + 1;
        left.class_counts = CountClasses(ds, left_rids);
        left.leaf_class = Majority(left.class_counts);
        TreeNode right;
        right.depth = depth + 1;
        right.class_counts = CountClasses(ds, right_rids);
        right.leaf_class = Majority(right.class_counts);

        const NodeId left_id = tree->AddNode(std::move(left));
        const NodeId right_id = tree->AddNode(std::move(right));
        // `root` may be dangling after AddNode reallocations; refetch.
        TreeNode& node = tree->mutable_node(root_id);
        node.is_leaf = false;
        node.split = best.split;
        node.left = left_id;
        node.right = right_id;
        BuildExactSubtree(ds, left_rids, options, tree, left_id, tracker,
                          pool);
        BuildExactSubtree(ds, right_rids, options, tree, right_id, tracker,
                          pool);
        return;
      }
    }
  }
  TreeNode& node = tree->mutable_node(root_id);
  node.is_leaf = true;
  node.leaf_class = Majority(node.class_counts);
}

BuildResult ExactBuilder::Build(const Dataset& train) {
  BuildResult result;
  ScanTracker tracker(&result.stats);
  Timer timer;
  TrainObserver* const observer = options_.observer;
  if (observer != nullptr) {
    observer->OnBuildStart(name(), train.num_records());
  }

  result.tree = DecisionTree(train.schema());
  std::vector<RecordId> rids(train.num_records());
  for (RecordId r = 0; r < train.num_records(); ++r) rids[r] = r;

  TreeNode root;
  root.depth = 0;
  root.class_counts = train.ClassCounts();
  root.leaf_class = Majority(root.class_counts);
  const NodeId root_id = result.tree.AddNode(std::move(root));

  // The exact builder re-reads the partition once per level in a disk
  // implementation; as an in-memory reference we charge a single scan
  // (its cost counters are not used in figure reproductions).
  tracker.ChargeScan(train);
  ThreadPool pool(options_.num_threads);
  BuildExactSubtree(train, rids, options_, &result.tree, root_id, &tracker,
                    &pool);
  if (options_.prune) PruneTreeMdl(&result.tree);

  result.stats.tree_nodes = result.tree.num_nodes();
  result.stats.tree_depth = result.tree.Depth();
  result.stats.wall_seconds = timer.Seconds();
  if (observer != nullptr) {
    // The recursive build has no scan rounds; report it as one pass.
    PassObservation po;
    po.records_scanned = train.num_records();
    po.scan_seconds = result.stats.wall_seconds;
    po.tree_nodes = result.stats.tree_nodes;
    observer->OnPass(po);
    observer->OnBuildEnd(result.stats);
  }
  return result;
}

}  // namespace cmp
