#ifndef CMP_EXACT_EXACT_H_
#define CMP_EXACT_EXACT_H_

#include <vector>

#include "common/dataset.h"
#include "common/thread_pool.h"
#include "io/scan.h"
#include "tree/builder.h"
#include "tree/split.h"
#include "tree/tree.h"

namespace cmp {

/// Result of an exact best-split search over a set of records.
struct ExactSplit {
  Split split;
  double gini = 1.0;
  bool valid = false;
};

/// Finds the exact gini-optimal binary split over ALL attributes for the
/// records `rids` of `ds` (numeric: every distinct-value boundary;
/// categorical: best subset). This is the reference splitter Table 1
/// compares CMP against. Sort work is charged to `tracker` when provided.
/// A `pool` fans the per-attribute searches across worker threads; the
/// winning split is reduced in ascending attribute order afterwards, so
/// the result is identical for any thread count.
ExactSplit FindBestSplitExact(const Dataset& ds,
                              const std::vector<RecordId>& rids,
                              ScanTracker* tracker = nullptr,
                              ThreadPool* pool = nullptr);

/// Recursively grows an exact greedy subtree for `rids` under the node
/// `root_id` of `tree` (whose class_counts must already describe `rids`).
/// Used by every builder once a partition fits in memory
/// (BuilderOptions::in_memory_threshold) — the standard switch RF-Hybrid
/// makes explicit. Honors min_split_records, max_depth and, when
/// `options.prune` is set, the PUBLIC(1) stop test.
void BuildExactSubtree(const Dataset& ds, const std::vector<RecordId>& rids,
                       const BuilderOptions& options, DecisionTree* tree,
                       NodeId root_id, ScanTracker* tracker = nullptr,
                       ThreadPool* pool = nullptr);

/// Convenience: a whole-tree exact greedy builder (used in tests as the
/// ground-truth classifier and by Table 1's "Exact Algo." column).
class ExactBuilder : public TreeBuilder {
 public:
  explicit ExactBuilder(BuilderOptions options = {}) : options_(options) {}

  BuildResult Build(const Dataset& train) override;
  std::string name() const override { return "Exact"; }

 private:
  BuilderOptions options_;
};

}  // namespace cmp

#endif  // CMP_EXACT_EXACT_H_
